package experiments

import (
	"testing"
	"time"
)

// TestE19CheckpointLatencyBounds is the CI gate on non-quiescent
// checkpointing (acceptance bound of the E19 experiment, reduced size): with
// the incremental copy-on-write cut, p99 checkin latency while checkpoints
// loop must stay within 1.5x of the steady-state p99 (with a small absolute
// floor so microsecond-scale noise on shared runners cannot fail the gate).
func TestE19CheckpointLatencyBounds(t *testing.T) {
	if raceEnabled {
		// Race instrumentation inflates the encode CPU cost ~10x and with it
		// the latency ratios; correctness under -race is covered by the
		// checkpointer-vs-writers stress test. The perf gate runs unraced.
		t.Skip("perf bounds are not meaningful under the race detector")
	}
	const checkins = 2000
	// Shared single-CPU runners see CPU theft and filesystem-journal
	// interference from sibling processes; retries separate a genuinely
	// regressed cut from a noisy window.
	const attempts = 3
	var last CheckpointLatencyResult
	pass := false
	for a := 0; a < attempts && !pass; a++ {
		res, err := RunCheckpointLatency(false, checkins)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: steady p99 %v, during-checkpoint p99 %v, max pause %v, %d checkpoints",
			a+1, res.SteadyP99, res.DuringP99, res.MaxPause, res.Checkpoints)
		if res.Checkpoints < 2 {
			t.Fatalf("only %d checkpoints completed while the writers ran; the phase measured nothing", res.Checkpoints)
		}
		last = res
		bound := res.SteadyP99 * 3 / 2
		// Absolute floor: both phases are fsync-bound, so a single slow
		// journal commit inside the during window (microsecond-scale steady
		// p99, millisecond-scale outlier) would fail a pure ratio on noise
		// alone. The floor stays far below the quiescent design's stall,
		// whose exclusive encode pause alone is ~10ms at this state size.
		if floor := res.SteadyP99 + 3*time.Millisecond; bound < floor {
			bound = floor
		}
		// The pause gate is the direct design signal and is immune to
		// fsync-queue noise: the COW cut holds the repository lock for a
		// 64-pointer copy (~3µs measured), the quiescent ablation for the
		// full encode (~10ms). 2ms of headroom tolerates scheduler
		// preemption inside the cut on a stolen CPU.
		pass = res.DuringP99 <= bound && res.MaxPause <= 2*time.Millisecond
	}
	if !pass {
		t.Fatalf("during-checkpoint p99 %v vs steady %v (1.5x acceptance bound) or max exclusive pause %v (2ms ceiling) regressed",
			last.DuringP99, last.SteadyP99, last.MaxPause)
	}
}

// TestE19SmallSmoke keeps the full experiment path (report rows, metrics)
// exercised at a tiny size in the regular test run.
func TestE19SmallSmoke(t *testing.T) {
	res, err := RunCheckpointLatency(true, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyP99 <= 0 || res.DuringP99 <= 0 {
		t.Fatalf("degenerate percentiles: %+v", res)
	}
}
