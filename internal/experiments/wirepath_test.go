package experiments

import "testing"

// TestE18WireBounds is the CI gate on the multiplexed wire protocol
// (acceptance bounds of the E18 experiment, run at a reduced size): at 8
// concurrent workstations over real loopback sockets, pooled multiplexed
// connections must at least double the aggregate end-to-end checkout
// throughput of the connect-per-call baseline in hot mode, where per-call
// connection setup dominates. The committed BENCH_E18.json records the
// full-size numbers.
func TestE18WireBounds(t *testing.T) {
	if raceEnabled {
		// Race instrumentation flattens the wire-overhead gap the bound
		// measures. Correctness under -race is covered by the rpc pipelining
		// /restart/dedup tests and the txn TCP tests; the perf gate runs
		// unraced (`make e18-short`).
		t.Skip("perf bounds are not meaningful under the race detector")
	}
	const readers, rounds = 8, 120
	cpc, err := RunWireScaling(true, readers, rounds, WireHot)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := RunWireScaling(false, readers, rounds, WireHot)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("connect-per-call: %.0f ops/s; multiplexed: %.0f ops/s (speedup %.2fx)",
		cpc.OpsPerSec(), mux.OpsPerSec(), mux.OpsPerSec()/cpc.OpsPerSec())
	if mux.OpsPerSec() < 2*cpc.OpsPerSec() {
		t.Fatalf("multiplexed wire %.0f ops/s vs connect-per-call %.0f ops/s: below the 2x floor",
			mux.OpsPerSec(), cpc.OpsPerSec())
	}
}

// TestE18WireModes smoke-tests the cold and big modes at a small size so the
// full-transfer and chunked-streaming loops stay exercised end to end.
func TestE18WireModes(t *testing.T) {
	for _, mode := range []WirePathMode{WireCold, WireBig} {
		rounds := 8
		if mode == WireBig {
			rounds = 2
		}
		res, err := RunWireScaling(false, 2, rounds, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Checkouts != 2*rounds || res.OpsPerSec() <= 0 {
			t.Fatalf("%s: implausible result %+v", mode, res)
		}
	}
}
