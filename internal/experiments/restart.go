package experiments

import (
	"fmt"
	"os"
	"time"

	"concord/internal/catalog"
	"concord/internal/repo"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// RestartResult is the outcome of one RunRestart configuration.
type RestartResult struct {
	// History is the number of churn operations logged.
	History int
	// DiskBytes is the on-disk footprint (segments + snapshot) at close.
	DiskBytes int64
	// Reopen is the repo.Open latency of the restart.
	Reopen time.Duration
}

// restartLiveDOVs is the fixed live-state size of the E13 workload: history
// grows while live state does not, which is exactly the regime checkpointing
// targets (status flips, metadata overwrites — the cooperation protocol's
// hot keys).
const restartLiveDOVs = 24

// RunRestart builds a repository whose log holds `history` update operations
// over a fixed set of live DOVs, optionally checkpointing every
// ckptEvery operations (0 disables checkpointing), then closes it and
// measures the restart: repo.Open latency and the on-disk log footprint.
func RunRestart(history, ckptEvery int) (RestartResult, error) {
	res := RestartResult{History: history}
	dir, err := os.MkdirTemp("", "concord-e13")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New()
	if err := vlsi.RegisterCatalog(cat); err != nil {
		return res, err
	}
	opts := repo.Options{Dir: dir, SegmentBytes: 64 << 10}
	r, err := repo.Open(cat, opts)
	if err != nil {
		return res, err
	}
	if err := r.CreateGraph("da"); err != nil {
		r.Close()
		return res, err
	}
	for i := 0; i < restartLiveDOVs; i++ {
		obj := catalog.NewObject(vlsi.DOTFloorplan).
			Set("cell", catalog.Str("c")).
			Set("area", catalog.Float(float64(100+i)))
		v := &version.DOV{
			ID: version.ID(fmt.Sprintf("v%03d", i)), DOT: vlsi.DOTFloorplan, DA: "da",
			Object: obj, Status: version.StatusWorking,
		}
		if i > 0 {
			v.Parents = []version.ID{version.ID(fmt.Sprintf("v%03d", i-1))}
		}
		if err := r.Checkin(v, i == 0); err != nil {
			r.Close()
			return res, err
		}
	}
	for i := 0; i < history; i++ {
		id := version.ID(fmt.Sprintf("v%03d", i%restartLiveDOVs))
		if err := r.SetStatus(id, version.Status(1+i%3)); err != nil {
			r.Close()
			return res, err
		}
		if err := r.PutMeta(fmt.Sprintf("hot/%d", i%8), []byte(fmt.Sprintf("round-%d", i))); err != nil {
			r.Close()
			return res, err
		}
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			if err := r.Checkpoint(); err != nil {
				r.Close()
				return res, err
			}
		}
	}
	res.DiskBytes = r.DiskLogBytes()
	if err := r.Close(); err != nil {
		return res, err
	}

	start := time.Now()
	r2, err := repo.Open(cat, opts)
	if err != nil {
		return res, err
	}
	res.Reopen = time.Since(start)
	defer r2.Close()
	if r2.DOVCount() != restartLiveDOVs {
		return res, fmt.Errorf("restart recovered %d DOVs, want %d", r2.DOVCount(), restartLiveDOVs)
	}
	if err := r2.CheckConsistency(); err != nil {
		return res, err
	}
	return res, nil
}

// E13Restart measures restart latency and on-disk log size as history
// grows, with and without checkpointing. Without checkpoints both scale
// with lifetime writes (the seed design: wal.Log.Truncate existed but
// nothing called it); with the checkpoint subsystem both stay bounded by
// live state, which is what lets the Fig. 8 restart choreography assume the
// repository comes back quickly after a crash.
func E13Restart() (Report, error) {
	rep := Report{
		ID:     "E13",
		Title:  "restart latency and log size vs. history length (Fig. 8 restart, DESIGN.md §3.5)",
		Header: []string{"history ops", "disk KiB off", "disk KiB on", "restart off", "restart on"},
	}
	const ckptEvery = 2048
	for _, history := range []int{4000, 16000, 64000} {
		off, err := RunRestart(history, 0)
		if err != nil {
			return rep, fmt.Errorf("E13 no-checkpoint history=%d: %w", history, err)
		}
		on, err := RunRestart(history, ckptEvery)
		if err != nil {
			return rep, fmt.Errorf("E13 checkpointed history=%d: %w", history, err)
		}
		rep.Rows = append(rep.Rows, []string{
			d(history),
			f(float64(off.DiskBytes) / 1024), f(float64(on.DiskBytes) / 1024),
			off.Reopen.Round(10 * time.Microsecond).String(),
			on.Reopen.Round(10 * time.Microsecond).String(),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("fixed live state (%d DOVs); history = status flips + metadata overwrites", restartLiveDOVs),
		fmt.Sprintf("off = no checkpoints (full-history replay); on = checkpoint every %d ops (snapshot + suffix replay)", ckptEvery),
		"with checkpointing, disk and restart cost are bounded by live state, not history length",
	)
	return rep, nil
}
