package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	reports, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 14 {
		t.Fatalf("got %d reports, want 14", len(reports))
	}
	for _, rep := range reports {
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", rep.ID)
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) || !strings.Contains(out, rep.Title) {
			t.Errorf("%s: rendering broken", rep.ID)
		}
	}
}

func TestE7MatrixMatchesFigure(t *testing.T) {
	rep, err := E7StateGraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 15 {
		t.Fatalf("matrix rows = %d, want 15 operations", len(rep.Rows))
	}
	// Terminated column (last) must be all illegal.
	for _, row := range rep.Rows {
		if row[len(row)-1] != "·" {
			t.Fatalf("operation %s legal in terminated state", row[0])
		}
	}
}

func TestE9ShapeHolds(t *testing.T) {
	rep, err := E9Cooperation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		concord := parseF(t, row[1])
		ct := parseF(t, row[2])
		flat := parseF(t, row[3])
		if !(concord < ct && ct <= flat+1e-9) {
			t.Fatalf("N=%s: shape violated: %g !< %g !<= %g", row[0], concord, ct, flat)
		}
	}
	// Speedup grows with N (near-linear claim).
	first := parseF(t, strings.TrimSuffix(rep.Rows[0][4], "x"))
	lastRow := rep.Rows[len(rep.Rows)-1]
	last := parseF(t, strings.TrimSuffix(lastRow[4], "x"))
	if last <= first {
		t.Fatalf("speedup not growing: %g then %g", first, last)
	}
}

func TestE10ExactlyOnce(t *testing.T) {
	rep, err := E10CommitProtocols()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != row[2] || row[2] != row[3] {
			t.Fatalf("loss %s: tx=%s committed=%s effects=%s", row[0], row[1], row[2], row[3])
		}
	}
}

func TestE11LostWorkBoundedByInterval(t *testing.T) {
	rep, err := E11RecoveryPoints()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		lost := parseF(t, row[3])
		if strings.HasPrefix(row[0], "none") {
			if lost != 23 {
				t.Fatalf("whole-DOP rollback lost %g, want 23 (all work)", lost)
			}
			continue
		}
		interval := parseF(t, row[0])
		if lost >= interval {
			t.Fatalf("interval %g lost %g work units (must be < interval)", interval, lost)
		}
	}
}

func TestE12MultiWorkstationRuns(t *testing.T) {
	res, err := RunMultiWorkstation(false, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkins != 20 {
		t.Fatalf("checkins = %d, want 20", res.Checkins)
	}
	if res.OpsPerSec() <= 0 {
		t.Fatalf("ops/s = %g", res.OpsPerSec())
	}
	if res.WALAppends == 0 || res.WALBatches == 0 || res.WALBatches > res.WALAppends {
		t.Fatalf("WAL stats appends=%d batches=%d", res.WALAppends, res.WALBatches)
	}
	// The serialized baseline must still work and batch nothing.
	ser, err := RunMultiWorkstation(true, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ser.WALAppends != ser.WALBatches {
		t.Fatalf("serialized run batched: appends=%d batches=%d", ser.WALAppends, ser.WALBatches)
	}
}

// TestE13RestartBounded asserts the acceptance criterion on the
// deterministic axis (disk bytes; latency is too noisy for CI): with
// checkpointing, quadrupling the history must not grow the on-disk
// footprint, while without it the footprint scales with history.
func TestE13RestartBounded(t *testing.T) {
	smallOn, err := RunRestart(4000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	largeOn, err := RunRestart(16000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded by live state: allow slack for where the last checkpoint
	// fell, but nothing near the 4x the history grew by.
	if largeOn.DiskBytes > 2*smallOn.DiskBytes {
		t.Fatalf("checkpointed footprint scales with history: %d -> %d bytes", smallOn.DiskBytes, largeOn.DiskBytes)
	}
	largeOff, err := RunRestart(16000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if largeOff.DiskBytes < 3*largeOn.DiskBytes {
		t.Fatalf("full-replay footprint %d not clearly above checkpointed %d", largeOff.DiskBytes, largeOn.DiskBytes)
	}
	if largeOn.Reopen <= 0 || largeOff.Reopen <= 0 {
		t.Fatalf("restart latencies not measured: on=%v off=%v", largeOn.Reopen, largeOff.Reopen)
	}
}

// TestE14CacheDeltaBounds is the E14 acceptance check in short mode (one
// mid-size configuration): re-checkout of an unmodified object transfers
// O(hash) bytes, and a small edit to a large object ships a delta at least
// 5x smaller than the full encoding — with content equality asserted inside
// RunCacheDelta via the canonical encodings on both ends.
func TestE14CacheDeltaBounds(t *testing.T) {
	const parts, edits, partBytes = 256, 2, 480
	res, err := RunCacheDelta(parts, edits, partBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectBytes < 100<<10 {
		t.Fatalf("E14 object only %d bytes; the bounds below assume a large object", res.ObjectBytes)
	}
	if res.NotModifiedBytes > 1024 {
		t.Fatalf("NotModified re-checkout transferred %d bytes, want O(hash)", res.NotModifiedBytes)
	}
	if res.ColdBytes < uint64(res.ObjectBytes) {
		t.Fatalf("cold checkout transferred %d bytes for a %d-byte object", res.ColdBytes, res.ObjectBytes)
	}
	if res.CheckinDeltaBytes*5 > uint64(res.ObjectBytes) {
		t.Fatalf("checkin delta %d bytes vs full %d — want ≥ 5x smaller", res.CheckinDeltaBytes, res.ObjectBytes)
	}
	if res.CheckoutDeltaBytes*5 > uint64(res.ObjectBytes) {
		t.Fatalf("checkout delta %d bytes vs full %d — want ≥ 5x smaller", res.CheckoutDeltaBytes, res.ObjectBytes)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
