package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/repo"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// CheckpointLatencyResult is the outcome of one RunCheckpointLatency
// configuration: checkin latency percentiles with the checkpointer idle and
// with it looping, plus the observed exclusive-lock pauses.
type CheckpointLatencyResult struct {
	// SteadyP50/SteadyP99 are checkin latencies with no checkpoint running.
	SteadyP50, SteadyP99 time.Duration
	// DuringP50/DuringP99 are checkin latencies while checkpoints loop in
	// the background.
	DuringP50, DuringP99 time.Duration
	// MaxPause is the longest exclusive-lock window any checkpoint held
	// (the snapshot cut in the incremental design; the full encode in the
	// quiescent ablation).
	MaxPause time.Duration
	// Checkpoints is how many checkpoints completed during the During phase.
	Checkpoints int
}

// ckptLatLiveDOVs sizes the live state: big enough that a quiescent full
// encode visibly stalls writers, small enough for a CI gate.
const ckptLatLiveDOVs = 2000

// percentile returns the p-quantile of the (sorted in place) samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(p * float64(len(samples)-1))
	return samples[idx]
}

// RunCheckpointLatency measures what checkpointing costs the writers
// (DESIGN.md §3.8, E19). A repository is preloaded with ckptLatLiveDOVs live
// versions; `checkins` chained checkins then run twice — once with the
// checkpointer idle and once with checkpoints looping in a background
// goroutine — and each checkin is timed individually. quiescent selects the
// ablation design (full snapshot encoded under the exclusive repository
// lock) instead of the incremental copy-on-write cut.
func RunCheckpointLatency(quiescent bool, checkins int) (CheckpointLatencyResult, error) {
	var res CheckpointLatencyResult
	dir, err := os.MkdirTemp("", "concord-e19")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New()
	if err := vlsi.RegisterCatalog(cat); err != nil {
		return res, err
	}
	// Sync: true is the deployed shape (forced log writes); it also anchors
	// the steady-state baseline at fsync latency, so the gate's ratio
	// compares checkpoint-induced stalls against real commit cost rather
	// than against a microsecond-scale buffered append.
	r, err := repo.Open(cat, repo.Options{Dir: dir, Sync: true, QuiescentCheckpoint: quiescent})
	if err != nil {
		return res, err
	}
	defer r.Close()
	if err := r.CreateGraph("da"); err != nil {
		return res, err
	}
	checkin := func(id string, parent version.ID) error {
		obj := catalog.NewObject(vlsi.DOTFloorplan).
			Set("cell", catalog.Str(id)).
			Set("area", catalog.Float(float64(100+len(id))))
		v := &version.DOV{
			ID: version.ID(id), DOT: vlsi.DOTFloorplan, DA: "da",
			Object: obj, Status: version.StatusWorking,
		}
		if parent != "" {
			v.Parents = []version.ID{parent}
		}
		return r.Checkin(v, parent == "")
	}
	var prev version.ID
	for i := 0; i < ckptLatLiveDOVs; i++ {
		id := fmt.Sprintf("live-%05d", i)
		if err := checkin(id, prev); err != nil {
			return res, err
		}
		prev = version.ID(id)
	}
	// One checkpoint up front so the During phase starts from a published
	// chain (its loop then alternates incremental deltas and rebases).
	if err := r.Checkpoint(); err != nil {
		return res, err
	}

	measure := func(tag string) ([]time.Duration, error) {
		samples := make([]time.Duration, 0, checkins)
		for i := 0; i < checkins; i++ {
			id := fmt.Sprintf("%s-%05d", tag, i)
			start := time.Now()
			if err := checkin(id, prev); err != nil {
				return nil, err
			}
			samples = append(samples, time.Since(start))
			prev = version.ID(id)
		}
		return samples, nil
	}

	steady, err := measure("steady")
	if err != nil {
		return res, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ckpts int
	var ckptErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Checkpoint(); err != nil {
				ckptErr = err
				return
			}
			ckpts++
			// Pace the loop. An unthrottled spin measures abuse, not the
			// design: Checkpoint's no-op check takes the repository lock
			// exclusively (starving writers on a writer-preferring RWMutex),
			// and a full-rebase payload fsync every millisecond serializes
			// with the writers' commit fsyncs in the filesystem journal. A
			// ~25ms cadence is still far denser than any deployed trigger
			// (core fires on log-growth thresholds, seconds apart).
			time.Sleep(25 * time.Millisecond)
		}
	}()
	during, err := measure("during")
	close(stop)
	wg.Wait()
	if err != nil {
		return res, err
	}
	if ckptErr != nil {
		return res, fmt.Errorf("background checkpointer: %w", ckptErr)
	}

	res.SteadyP50 = percentile(steady, 0.50)
	res.SteadyP99 = percentile(steady, 0.99)
	res.DuringP50 = percentile(during, 0.50)
	res.DuringP99 = percentile(during, 0.99)
	_, res.MaxPause = r.CheckpointPause()
	res.Checkpoints = ckpts
	return res, nil
}

// us renders a duration as microseconds for the report table.
func us(d time.Duration) string { return fmt.Sprintf("%.0fus", float64(d.Nanoseconds())/1e3) }

// E19CheckpointLatency quantifies non-quiescent checkpointing (DESIGN.md
// §3.8): with the copy-on-write cut, writer latency while checkpoints loop
// stays at its steady-state level and the exclusive pause is the time to copy
// 64 shard pointers; the quiescent ablation holds the repository lock across
// the full encode, which shows up directly in the writers' during-checkpoint
// tail.
func E19CheckpointLatency() (Report, error) {
	rep := Report{
		ID:     "E19",
		Title:  "checkin latency under checkpointing: incremental COW cut vs quiescent ablation (DESIGN.md §3.8)",
		Header: []string{"design", "steady p50", "steady p99", "ckpt p50", "ckpt p99", "max pause", "ckpts"},
	}
	const checkins = 2000
	for _, quiescent := range []bool{false, true} {
		design := "incremental"
		if quiescent {
			design = "quiescent"
		}
		res, err := RunCheckpointLatency(quiescent, checkins)
		if err != nil {
			return rep, fmt.Errorf("E19 %s: %w", design, err)
		}
		rep.Rows = append(rep.Rows, []string{
			design,
			us(res.SteadyP50), us(res.SteadyP99),
			us(res.DuringP50), us(res.DuringP99),
			us(res.MaxPause), d(res.Checkpoints),
		})
		q := func(name string, v float64, unit string) {
			rep.Metrics = append(rep.Metrics, Metric{
				Name: fmt.Sprintf("%s/design=%s", name, design), Value: v, Unit: unit,
			})
		}
		q("checkin_p99_us/phase=steady", float64(res.SteadyP99.Nanoseconds())/1e3, "us")
		q("checkin_p99_us/phase=checkpoint", float64(res.DuringP99.Nanoseconds())/1e3, "us")
		q("ckpt_max_pause_us", float64(res.MaxPause.Nanoseconds())/1e3, "us")
		q("ckpts_completed", float64(res.Checkpoints), "count")
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d live DOVs; %d timed checkins per phase; background checkpointer loops during the ckpt phase", ckptLatLiveDOVs, checkins),
		"incremental = COW cut (pointer capture under the exclusive lock, encode off-lock) + dirty-shard deltas",
		"quiescent = ablation: full snapshot encoded while holding the repository lock exclusively",
	)
	return rep, nil
}
