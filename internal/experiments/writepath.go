package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/repo"
	"concord/internal/version"
)

// WriteScalingResult is the outcome of one RunCheckinScaling configuration.
type WriteScalingResult struct {
	// Writers is the concurrent writer (design area) count.
	Writers int
	// Checkins is the total checkin count across all writers.
	Checkins int
	// Elapsed is the wall-clock time of the parallel phase.
	Elapsed time.Duration
	// Appends/Batches/Syncs are the repository WAL counters over the
	// measured phase; Appends/Batches is the achieved group-commit factor.
	Appends, Batches, Syncs uint64
}

// OpsPerSec reports aggregate checkin throughput.
func (r WriteScalingResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Checkins) / r.Elapsed.Seconds()
}

// GroupFactor reports how many appends shared one commit batch on average.
func (r WriteScalingResult) GroupFactor() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.Appends) / float64(r.Batches)
}

// e16RegisterTypes declares the E16 catalog: a module DOT with enough parts
// that record encode/decode is real work per checkin, the regime where the
// critical-section length (what per-DA sharding shrinks) matters.
func e16RegisterTypes(c *catalog.Catalog) error {
	if err := c.Register(&catalog.DOT{
		Name: "e16cell",
		Attrs: []catalog.AttrDef{
			{Name: "name", Kind: catalog.KindString, Required: true},
			{Name: "data", Kind: catalog.KindString},
		},
	}); err != nil {
		return err
	}
	return c.Register(&catalog.DOT{
		Name:       "e16mod",
		Attrs:      []catalog.AttrDef{{Name: "title", Kind: catalog.KindString, Required: true}},
		Components: []catalog.ComponentDef{{Name: "cells", DOT: "e16cell"}},
	})
}

// e16Parts sizes each checked-in object (cells × payload bytes per cell).
const (
	e16Parts     = 12
	e16PartBytes = 24
)

func e16Object(tag string, salt int) *catalog.Object {
	mod := catalog.NewObject("e16mod").Set("title", catalog.Str(tag))
	for i := 0; i < e16Parts; i++ {
		data := make([]byte, e16PartBytes)
		for j := range data {
			data[j] = 'a' + byte((i+j+salt)%26)
		}
		cell := catalog.NewObject("e16cell").
			Set("name", catalog.Str(fmt.Sprintf("c%03d", i))).
			Set("data", catalog.Str(string(data)))
		mod.AddPart("cells", cell)
	}
	return mod
}

// RunCheckinScaling opens one durable repository and has n concurrent
// writers — one per design area — each perform `rounds` chained checkins
// into its own derivation graph, with forced log writes (Sync). It measures
// aggregate checkin throughput of the parallel phase.
//
// serializedWrites selects the fully serial pre-concurrency write path (one
// global repository lock held across each forced log write) as the baseline;
// the default is the §3.7 sharded pipeline: per-DA write locks, reservation
// under the shard lock, durability waits shared through group commit. Used
// by E16 and the write-path benchmarks.
func RunCheckinScaling(serializedWrites bool, n, rounds int) (WriteScalingResult, error) {
	res := WriteScalingResult{Writers: n}
	dir, err := os.MkdirTemp("", "concord-e16")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New()
	if err := e16RegisterTypes(cat); err != nil {
		return res, err
	}
	r, err := repo.Open(cat, repo.Options{Dir: dir, Sync: true, SerializedWrites: serializedWrites})
	if err != nil {
		return res, err
	}
	defer r.Close()
	roots := make([]version.ID, n)
	for i := 0; i < n; i++ {
		da := fmt.Sprintf("da-%d", i)
		if err := r.CreateGraph(da); err != nil {
			return res, err
		}
		roots[i] = version.ID(fmt.Sprintf("%s/root", da))
		root := &version.DOV{
			ID: roots[i], DOT: "e16mod", DA: da,
			Object: e16Object(da, 0), Status: version.StatusWorking,
		}
		if err := r.Checkin(root, true); err != nil {
			return res, err
		}
	}
	// Prebuild every version outside the timed phase: the experiment
	// measures the repository write path, not the synthetic object builder
	// (real workstations ship objects they already hold).
	vs := make([][]*version.DOV, n)
	for i := 0; i < n; i++ {
		da := fmt.Sprintf("da-%d", i)
		vs[i] = make([]*version.DOV, rounds)
		prev := roots[i]
		for j := 0; j < rounds; j++ {
			id := version.ID(fmt.Sprintf("%s/v%05d", da, j))
			vs[i][j] = &version.DOV{
				ID: id, DOT: "e16mod", DA: da, Parents: []version.ID{prev},
				Object: e16Object(da, j), Status: version.StatusWorking,
			}
			prev = id
		}
	}
	a0, b0, s0 := r.LogStats()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j, v := range vs[w] {
				if err := r.Checkin(v, false); err != nil {
					errs <- fmt.Errorf("da-%d round %d: %w", w, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return res, err
	}
	a1, b1, s1 := r.LogStats()
	res.Checkins = n * rounds
	res.Appends, res.Batches, res.Syncs = a1-a0, b1-b0, s1-s0
	return res, nil
}

// ReplayResult is the outcome of one RunReplayComparison.
type ReplayResult struct {
	// History is the number of DOV-insert records replayed.
	History int
	// Serial is the best repo.Open latency with record-at-a-time replay.
	Serial time.Duration
	// Pipelined is the best repo.Open latency with the §3.7 pipelined
	// replay (buffered segment streaming + decode workers).
	Pipelined time.Duration
}

// Speedup reports serial/pipelined.
func (r ReplayResult) Speedup() float64 {
	if r.Pipelined <= 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Pipelined)
}

// e16ReplayDAs spreads the replay history over several graphs, matching the
// multi-DA regime the sharded write path produces.
const e16ReplayDAs = 8

// RunReplayComparison builds a repository whose log holds `history` checkins
// (no checkpoint, so restart replays everything), then measures the restart
// latency of both replay modes — record-at-a-time serial replay vs the
// pipelined replay that streams segments through a large read buffer and
// decodes DOV payloads on a worker pool. Each mode is opened `tries` times
// and the best run is kept (page cache and scheduler noise dominate the
// tail on shared runners).
func RunReplayComparison(history, tries int) (ReplayResult, error) {
	res := ReplayResult{History: history}
	dir, err := os.MkdirTemp("", "concord-e16r")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	cat := catalog.New()
	if err := e16RegisterTypes(cat); err != nil {
		return res, err
	}
	// Build without forced writes: replay cost is what is measured, and the
	// records are identical either way.
	r, err := repo.Open(cat, repo.Options{Dir: dir})
	if err != nil {
		return res, err
	}
	prev := make([]version.ID, e16ReplayDAs)
	for i := 0; i < e16ReplayDAs; i++ {
		if err := r.CreateGraph(fmt.Sprintf("da-%d", i)); err != nil {
			r.Close()
			return res, err
		}
	}
	for j := 0; j < history; j++ {
		w := j % e16ReplayDAs
		da := fmt.Sprintf("da-%d", w)
		id := version.ID(fmt.Sprintf("%s/v%06d", da, j))
		v := &version.DOV{
			ID: id, DOT: "e16mod", DA: da,
			Object: e16Object(da, j), Status: version.StatusWorking,
		}
		if prev[w] != "" {
			v.Parents = []version.ID{prev[w]}
		}
		if err := r.Checkin(v, prev[w] == ""); err != nil {
			r.Close()
			return res, err
		}
		prev[w] = id
	}
	if err := r.Close(); err != nil {
		return res, err
	}

	reopen := func(opts repo.Options) (time.Duration, error) {
		opts.Dir = dir
		runtime.GC() // level the heap between runs; 64k DOVs churn it
		start := time.Now()
		r2, err := repo.Open(cat, opts)
		el := time.Since(start)
		if err != nil {
			return 0, err
		}
		if got := r2.DOVCount(); got != history {
			r2.Close()
			return 0, fmt.Errorf("replay recovered %d DOVs, want %d", got, history)
		}
		r2.Close()
		return el, nil
	}
	// Interleave the modes and keep each one's best run: measuring one mode
	// wholly before the other would hand the later one a systematically
	// warmer page cache.
	for i := 0; i < tries; i++ {
		s, err := reopen(repo.Options{SerialReplay: true})
		if err != nil {
			return res, fmt.Errorf("serial replay: %w", err)
		}
		p, err := reopen(repo.Options{})
		if err != nil {
			return res, fmt.Errorf("pipelined replay: %w", err)
		}
		if res.Serial == 0 || s < res.Serial {
			res.Serial = s
		}
		if res.Pipelined == 0 || p < res.Pipelined {
			res.Pipelined = p
		}
	}
	return res, nil
}

// E16WritePath measures the concurrent write path (DESIGN.md §3.7): the
// aggregate checkin throughput of N writer DAs against one durable server
// repository, comparing the fully serial pre-concurrency baseline (one
// global lock held across each forced log write) with the sharded pipeline
// (per-DA write locks + group-committed appends); and the cold-restart
// replay latency of a 64k-checkin history, comparing record-at-a-time
// serial replay with the pipelined replay. The paper's Sect. 5.1/5.2
// processing model makes checkin the write-side bottleneck of parallel DOP
// processing, and Fig. 8 assumes the repository restarts quickly — this
// experiment quantifies both after the write side got the E15 treatment.
func E16WritePath() (Report, error) {
	return e16WritePath([]int{1, 2, 4, 8, 16}, 400, 65536, 2)
}

// e16WritePath parameterizes E16 so CI can run a reduced configuration.
func e16WritePath(writerCounts []int, rounds, history, tries int) (Report, error) {
	rep := Report{
		ID:     "E16",
		Title:  "concurrent write path: multi-DA checkin scaling and pipelined replay (Sect. 5.1/5.2, DESIGN.md §3.7)",
		Header: []string{"writers", "checkins", "serialized ops/s", "sharded ops/s", "speedup", "sharded group factor"},
	}
	for _, n := range writerCounts {
		base, err := RunCheckinScaling(true, n, rounds)
		if err != nil {
			return rep, fmt.Errorf("E16 baseline N=%d: %w", n, err)
		}
		shard, err := RunCheckinScaling(false, n, rounds)
		if err != nil {
			return rep, fmt.Errorf("E16 sharded N=%d: %w", n, err)
		}
		speedup := 0.0
		if base.OpsPerSec() > 0 {
			speedup = shard.OpsPerSec() / base.OpsPerSec()
		}
		rep.Rows = append(rep.Rows, []string{
			d(n), d(shard.Checkins),
			f(base.OpsPerSec()), f(shard.OpsPerSec()),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f", shard.GroupFactor()),
		})
		rep.Metrics = append(rep.Metrics,
			Metric{Name: fmt.Sprintf("checkin_ops_per_sec/writers=%d/design=serialized", n), Value: base.OpsPerSec(), Unit: "ops/s"},
			Metric{Name: fmt.Sprintf("checkin_ops_per_sec/writers=%d/design=sharded", n), Value: shard.OpsPerSec(), Unit: "ops/s"},
			Metric{Name: fmt.Sprintf("checkin_group_commit_factor/writers=%d/design=sharded", n), Value: shard.GroupFactor(), Unit: "appends/batch"},
		)
	}
	rr, err := RunReplayComparison(history, tries)
	if err != nil {
		return rep, fmt.Errorf("E16 replay: %w", err)
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("replay %dk ops", rr.History/1024), d(rr.History),
		fmt.Sprintf("%.0f ms", rr.Serial.Seconds()*1000),
		fmt.Sprintf("%.0f ms", rr.Pipelined.Seconds()*1000),
		fmt.Sprintf("%.2fx", rr.Speedup()),
		"-",
	})
	rep.Metrics = append(rep.Metrics,
		Metric{Name: fmt.Sprintf("restart_replay_ms/history=%d/mode=serial", rr.History), Value: rr.Serial.Seconds() * 1000, Unit: "ms"},
		Metric{Name: fmt.Sprintf("restart_replay_ms/history=%d/mode=pipelined", rr.History), Value: rr.Pipelined.Seconds() * 1000, Unit: "ms"},
		Metric{Name: fmt.Sprintf("restart_replay_speedup/history=%d", rr.History), Value: rr.Speedup(), Unit: "x"},
	)
	rep.Notes = append(rep.Notes,
		"serialized = SerializedWrites ablation: one global repository lock held across each forced log write (the fully serial pre-concurrency write path; E12's NoGroupCommit isolates the group-commit half of the gap)",
		"sharded = per-DA write locks, WAL reservation under the shard lock, durability waits shared via group commit (DESIGN.md §3.7)",
		fmt.Sprintf("object: %d parts x %d B; every checkin is a forced log write (Sync)", e16Parts, e16PartBytes),
		"group factor = appends per commit batch achieved by concurrent writers (1.0 means every record paid its own fsync)",
		"replay rows compare record-at-a-time serial replay with the pipelined replay (1 MiB buffered segment streaming + DOV decode workers + in-LSN-order apply); single-CPU hosts see the buffering win, multi-core hosts add parallel decode",
	)
	return rep, nil
}
