package experiments

import (
	"fmt"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/version"
)

// WirePathMode selects what one RunWireScaling configuration measures.
type WirePathMode int

// Wire-path measurement modes.
const (
	// WireHot runs checkouts with warm workstation caches: every round trip
	// is a small NotModified handshake, so per-call wire overhead
	// (connection setup, framing, correlation) dominates.
	WireHot WirePathMode = iota + 1
	// WireCold drops the cache entry after every checkout, so each round
	// transfers the full mid-size payload.
	WireCold
	// WireBig is WireCold with a multi-megabyte design object: every
	// checkout streams the payload as a chunk sequence over the socket.
	WireBig
)

// String names the mode for report rows.
func (m WirePathMode) String() string {
	switch m {
	case WireHot:
		return "hot"
	case WireCold:
		return "cold"
	case WireBig:
		return "big"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Payload sizes of the E18 design objects.
const (
	e18ColdBytes = 64 << 10
	e18BigBytes  = 3 << 20
)

// WireScalingResult is the outcome of one RunWireScaling configuration.
type WireScalingResult struct {
	// Readers is the concurrent workstation count.
	Readers int
	// Checkouts is the total checkout count across all workstations.
	Checkouts int
	// Bytes is the design-object payload size each cold checkout moves.
	Bytes int
	// Elapsed is the wall-clock time of the parallel phase.
	Elapsed time.Duration
}

// OpsPerSec reports aggregate checkout throughput.
func (r WireScalingResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Checkouts) / r.Elapsed.Seconds()
}

// e18RegisterTypes declares the E18 catalog: one DOT with a single bulk
// attribute so payload size is directly controlled.
func e18RegisterTypes(c *catalog.Catalog) error {
	return c.Register(&catalog.DOT{
		Name: "e18blob",
		Attrs: []catalog.AttrDef{
			{Name: "name", Kind: catalog.KindString, Required: true},
			{Name: "data", Kind: catalog.KindString},
		},
	})
}

func e18Object(da string, payloadBytes int) *catalog.Object {
	data := make([]byte, payloadBytes)
	for i := range data {
		data[i] = 'a' + byte(i%26)
	}
	return catalog.NewObject("e18blob").
		Set("name", catalog.Str(da)).
		Set("data", catalog.Str(string(data)))
}

// site18 is one workstation's assembly in E18.
type site18 struct {
	tm  *txn.ClientTM
	da  string
	dov version.ID
}

// RunWireScaling boots one server behind a real loopback TCP listener and n
// workstation client-TMs, each over its own socket transport, seeds one
// design object per workstation's DA, then has every workstation perform
// `rounds` checkouts in parallel. connectPerCall selects the seed transport's
// behaviour (one freshly dialed connection per RPC) as the ablation baseline;
// the default is the multiplexed per-peer connection pool (DESIGN.md §5.2).
// Used by E18 and its CI gate.
func RunWireScaling(connectPerCall bool, n, rounds int, mode WirePathMode) (WireScalingResult, error) {
	res := WireScalingResult{Readers: n, Bytes: e18ColdBytes}
	if mode == WireBig {
		res.Bytes = e18BigBytes
	}
	cat := catalog.New()
	if err := e18RegisterTypes(cat); err != nil {
		return res, err
	}
	r, err := repo.Open(cat, repo.Options{})
	if err != nil {
		return res, err
	}
	defer r.Close()
	scopes := lock.NewScopeTable()
	stm := txn.NewServerTM(r, lock.NewManager(), scopes)
	participant, err := rpc.NewParticipant(stm, nil)
	if err != nil {
		return res, err
	}
	srv := rpc.NewTCP()
	defer srv.Close()
	addr, err := srv.ListenDeadline("127.0.0.1:0", rpc.DedupDeadline(stm.DeadlineHandler(participant)))
	if err != nil {
		return res, err
	}

	sites := make([]*site18, n)
	transports := make([]*rpc.TCP, n)
	defer func() {
		for _, s := range sites {
			if s != nil {
				s.tm.Close()
			}
		}
		for _, tr := range transports {
			if tr != nil {
				tr.Close()
			}
		}
	}()
	for i := range sites {
		da := fmt.Sprintf("da-%d", i)
		if err := r.CreateGraph(da); err != nil {
			return res, err
		}
		tr := rpc.NewTCP()
		tr.ConnectPerCall = connectPerCall
		transports[i] = tr
		client := rpc.NewClient(tr, fmt.Sprintf("ws-%d", i))
		client.Backoff = time.Millisecond
		tm, _, err := txn.NewClientTM(fmt.Sprintf("ws-%d", i), client, addr, "")
		if err != nil {
			return res, err
		}
		dop, err := tm.Begin("", da)
		if err != nil {
			tm.Close()
			return res, err
		}
		if err := dop.SetWorkspace(e18Object(da, res.Bytes)); err != nil {
			tm.Close()
			return res, err
		}
		root, err := dop.Checkin(version.StatusWorking, true)
		if err != nil {
			tm.Close()
			return res, err
		}
		if err := dop.Commit(); err != nil {
			tm.Close()
			return res, err
		}
		sites[i] = &site18{tm: tm, da: da, dov: root}
	}

	// Prepare one long-lived DOP per workstation; cold modes forget the
	// seeding checkin's cache entry so the first round is a full transfer.
	dops := make([]*txn.DOP, n)
	for i, s := range sites {
		d, err := s.tm.Begin("", s.da)
		if err != nil {
			return res, err
		}
		if mode != WireHot {
			s.tm.Cache().Drop(s.dov)
		}
		dops[i] = d
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i, s := range sites {
		wg.Add(1)
		go func(i int, s *site18) {
			defer wg.Done()
			for rd := 0; rd < rounds; rd++ {
				if _, err := dops[i].Checkout(s.dov, false); err != nil {
					errs <- fmt.Errorf("%s round %d: %w", s.da, rd, err)
					return
				}
				if mode != WireHot {
					s.tm.Cache().Drop(s.dov)
				}
			}
		}(i, s)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return res, err
	}
	res.Checkouts = n * rounds
	return res, nil
}

// E18WirePath measures end-to-end checkout throughput over real loopback
// sockets, comparing the seed transport's connect-per-call behaviour (one
// dialed connection per RPC) with the multiplexed binenc wire protocol
// (persistent per-peer connection pools, pipelined request/response
// correlation, chunked bulk transfer — DESIGN.md §5.2). Checkout is the
// dominant operation of the paper's Sect. 5.1 workstation/server loop, so
// per-call wire overhead multiplies into everything.
func E18WirePath() (Report, error) {
	return e18WirePath([]int{1, 2, 4, 8}, 400, 120, 8)
}

// e18WirePath parameterizes E18 so CI can run a reduced configuration.
func e18WirePath(readerCounts []int, hotRounds, coldRounds, bigRounds int) (Report, error) {
	rep := Report{
		ID:     "E18",
		Title:  "multiplexed wire protocol vs connect-per-call over real sockets (DESIGN.md §5.2)",
		Header: []string{"mode", "readers", "checkouts", "payload B", "connect-per-call ops/s", "multiplexed ops/s", "speedup"},
	}
	for _, mode := range []WirePathMode{WireHot, WireCold, WireBig} {
		rounds := hotRounds
		switch mode {
		case WireCold:
			rounds = coldRounds
		case WireBig:
			rounds = bigRounds
		}
		for _, n := range readerCounts {
			cpc, err := RunWireScaling(true, n, rounds, mode)
			if err != nil {
				return rep, fmt.Errorf("E18 %s connect-per-call N=%d: %w", mode, n, err)
			}
			mux, err := RunWireScaling(false, n, rounds, mode)
			if err != nil {
				return rep, fmt.Errorf("E18 %s multiplexed N=%d: %w", mode, n, err)
			}
			speedup := 0.0
			if cpc.OpsPerSec() > 0 {
				speedup = mux.OpsPerSec() / cpc.OpsPerSec()
			}
			rep.Rows = append(rep.Rows, []string{
				mode.String(), d(n), d(mux.Checkouts), d(mux.Bytes),
				f(cpc.OpsPerSec()), f(mux.OpsPerSec()),
				fmt.Sprintf("%.2fx", speedup),
			})
			rep.Metrics = append(rep.Metrics,
				Metric{Name: fmt.Sprintf("wire_checkout_ops_per_sec/mode=%s/readers=%d/transport=connect-per-call", mode, n), Value: cpc.OpsPerSec(), Unit: "ops/s"},
				Metric{Name: fmt.Sprintf("wire_checkout_ops_per_sec/mode=%s/readers=%d/transport=multiplexed", mode, n), Value: mux.OpsPerSec(), Unit: "ops/s"},
			)
		}
	}
	rep.Notes = append(rep.Notes,
		"connect-per-call = the seed TCP transport's behaviour (dial, one request/response, close) in the same frame format, isolating connection setup and lost pipelining",
		"multiplexed = persistent per-peer connection pool, pipelined request IDs, chunked streaming (DESIGN.md §5.2)",
		fmt.Sprintf("hot = warm cache (NotModified handshake per checkout); cold = full %d KiB transfer; big = full %d MiB transfer streamed in %d KiB chunks",
			e18ColdBytes>>10, e18BigBytes>>20, rpc.DefaultChunkBytes>>10),
		"all traffic crosses real loopback TCP sockets; one transport per workstation, one listener on the server",
	)
	return rep, nil
}
