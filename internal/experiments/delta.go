package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/version"
)

// CacheDeltaResult is the outcome of one RunCacheDelta configuration: the
// wire cost of moving one design object through the checkout/checkin cycle
// with the workstation cache on (DESIGN.md §4).
type CacheDeltaResult struct {
	// ObjectBytes is the canonical encoding size of the design object.
	ObjectBytes int
	// EditedParts / TotalParts describe the edit between the two versions.
	EditedParts, TotalParts int
	// ColdBytes is the response size of a cold (full) checkout.
	ColdBytes uint64
	// NotModifiedBytes is the response size of re-checking out a cached,
	// unmodified version.
	NotModifiedBytes uint64
	// CheckinDeltaBytes is the staged payload shipped for the edited
	// version (delta against the cached parent).
	CheckinDeltaBytes uint64
	// CheckoutDeltaBytes is the response size of checking out the edited
	// version on a workstation that caches its parent.
	CheckoutDeltaBytes uint64
	// ColdLatency / CachedLatency time the cold and the NotModified
	// checkout calls.
	ColdLatency, CachedLatency time.Duration
}

// e14RegisterTypes declares the E14 catalog: a cell library whose parts make
// the object large and the edits local.
func e14RegisterTypes(c *catalog.Catalog) error {
	if err := c.Register(&catalog.DOT{
		Name: "e14cell",
		Attrs: []catalog.AttrDef{
			{Name: "name", Kind: catalog.KindString, Required: true},
			{Name: "data", Kind: catalog.KindString},
		},
	}); err != nil {
		return err
	}
	return c.Register(&catalog.DOT{
		Name:       "e14lib",
		Attrs:      []catalog.AttrDef{{Name: "title", Kind: catalog.KindString, Required: true}},
		Components: []catalog.ComponentDef{{Name: "cells", DOT: "e14cell"}},
	})
}

// e14Object builds a library of `parts` cells carrying `partBytes` of data
// each (deterministically pseudo-random, so deltas cannot cheat via
// repetition).
func e14Object(parts, partBytes int, seed int64) *catalog.Object {
	rng := rand.New(rand.NewSource(seed))
	lib := catalog.NewObject("e14lib").Set("title", catalog.Str("E14"))
	buf := make([]byte, partBytes)
	for i := 0; i < parts; i++ {
		for j := range buf {
			buf[j] = 'a' + byte(rng.Intn(26))
		}
		cell := catalog.NewObject("e14cell").
			Set("name", catalog.Str(fmt.Sprintf("c%05d", i))).
			Set("data", catalog.Str(string(buf)))
		lib.AddPart("cells", cell)
	}
	return lib
}

// RunCacheDelta drives one checkout/edit/checkin/checkout cycle over an
// object of parts×partBytes and measures bytes-on-wire at each step:
//
//	ws1 checks in V0              (cold: full payload up)
//	ws2 checks V0 out             (cold: full payload down)
//	ws1 re-checks V0 out          (cached: NotModified handshake)
//	ws1 edits editParts cells, checks in V1   (delta up)
//	ws2 checks V1 out             (delta down against its cached V0)
//
// Content equality of ws2's reconstruction is asserted against ws1's
// workspace — the content-hash verification made observable.
func RunCacheDelta(parts, editParts, partBytes int) (CacheDeltaResult, error) {
	res := CacheDeltaResult{TotalParts: parts, EditedParts: editParts}
	sys, err := core.NewSystem(core.Options{RegisterTypes: e14RegisterTypes})
	if err != nil {
		return res, err
	}
	defer sys.Close()
	const da = "da-e14"
	if err := sys.CM().InitDesign(coop.Config{ID: da, DOT: "e14lib", Designer: "e14"}); err != nil {
		return res, err
	}
	if err := sys.CM().Start(da); err != nil {
		return res, err
	}
	ws1, err := sys.AddWorkstation("e14-ws1")
	if err != nil {
		return res, err
	}
	ws2, err := sys.AddWorkstation("e14-ws2")
	if err != nil {
		return res, err
	}

	// ws1 checks in the root version V0.
	root := e14Object(parts, partBytes, 14)
	enc, err := catalog.EncodeObject(root)
	if err != nil {
		return res, err
	}
	res.ObjectBytes = len(enc)
	dop0, err := ws1.Begin("", da)
	if err != nil {
		return res, err
	}
	if err := dop0.SetWorkspace(root); err != nil {
		return res, err
	}
	v0, err := dop0.Checkin(version.StatusWorking, true)
	if err != nil {
		return res, err
	}
	if err := dop0.Commit(); err != nil {
		return res, err
	}

	// ws2: cold checkout of V0 (full transfer).
	dop2, err := ws2.Begin("", da)
	if err != nil {
		return res, err
	}
	before := ws2.TM().WireStats()
	start := time.Now()
	if _, err := dop2.Checkout(v0, false); err != nil {
		return res, err
	}
	res.ColdLatency = time.Since(start)
	after := ws2.TM().WireStats()
	if after.FullCheckouts != before.FullCheckouts+1 {
		return res, fmt.Errorf("E14: cold checkout was not a full transfer: %+v", after)
	}
	res.ColdBytes = after.CheckoutBytesIn - before.CheckoutBytesIn

	// ws1: re-checkout of its own (cached) V0 — NotModified.
	dop1, err := ws1.Begin("", da)
	if err != nil {
		return res, err
	}
	before = ws1.TM().WireStats()
	start = time.Now()
	obj, err := dop1.Checkout(v0, true)
	if err != nil {
		return res, err
	}
	res.CachedLatency = time.Since(start)
	after = ws1.TM().WireStats()
	if after.NotModified != before.NotModified+1 {
		return res, fmt.Errorf("E14: re-checkout was not NotModified: %+v", after)
	}
	res.NotModifiedBytes = after.CheckoutBytesIn - before.CheckoutBytesIn

	// ws1 edits editParts cells and checks in V1 (delta up).
	cells := obj.Parts["cells"]
	for i := 0; i < editParts && i < len(cells); i++ {
		k := (i * 131) % len(cells)
		cells[k].Set("data", catalog.Str(fmt.Sprintf("edited-%05d", k)))
	}
	if err := dop1.SetWorkspace(obj); err != nil {
		return res, err
	}
	before = ws1.TM().WireStats()
	v1, err := dop1.Checkin(version.StatusWorking, false)
	if err != nil {
		return res, err
	}
	after = ws1.TM().WireStats()
	if after.DeltaCheckins != before.DeltaCheckins+1 {
		return res, fmt.Errorf("E14: edited checkin did not ship a delta: %+v", after)
	}
	res.CheckinDeltaBytes = after.CheckinBytesOut - before.CheckinBytesOut
	if err := dop1.Commit(); err != nil {
		return res, err
	}

	// ws2 checks V1 out: delta against its cached V0.
	before = ws2.TM().WireStats()
	got, err := dop2.Checkout(v1, false)
	if err != nil {
		return res, err
	}
	after = ws2.TM().WireStats()
	if after.DeltaCheckouts != before.DeltaCheckouts+1 {
		return res, fmt.Errorf("E14: relative checkout did not ship a delta: %+v", after)
	}
	res.CheckoutDeltaBytes = after.CheckoutBytesIn - before.CheckoutBytesIn

	// Both ends must hold identical bytes (the protocol verified hashes;
	// this makes it observable).
	wantEnc, err := catalog.EncodeObject(obj)
	if err != nil {
		return res, err
	}
	gotEnc, err := catalog.EncodeObject(got)
	if err != nil {
		return res, err
	}
	if !bytes.Equal(wantEnc, gotEnc) {
		return res, fmt.Errorf("E14: ws2 reconstruction differs from ws1 workspace")
	}
	if err := dop2.Commit(); err != nil {
		return res, err
	}
	return res, nil
}

// E14CacheDelta measures bytes-on-wire and checkout latency across object
// sizes and edit fractions: re-checkout of an unmodified object must cost
// O(hash) bytes, and small edits to large objects must travel as deltas far
// smaller than the full encoding (ISSUE 3 acceptance; DESIGN.md §4).
func E14CacheDelta() (Report, error) {
	rep := Report{
		ID:    "E14",
		Title: "workstation cache: bytes-on-wire and latency vs object size and edit fraction (DESIGN.md §4)",
		Header: []string{
			"object KiB", "edit", "cold KiB", "NM bytes", "ckin Δ KiB",
			"ckout Δ KiB", "full/Δ", "cold ms", "cached ms",
		},
	}
	const partBytes = 480
	for _, cfg := range []struct{ parts, edits int }{
		{32, 1}, {32, 8},
		{256, 2}, {256, 64},
		{2048, 16}, {2048, 512},
	} {
		res, err := RunCacheDelta(cfg.parts, cfg.edits, partBytes)
		if err != nil {
			return rep, fmt.Errorf("E14 parts=%d edits=%d: %w", cfg.parts, cfg.edits, err)
		}
		ratio := 0.0
		if res.CheckinDeltaBytes > 0 {
			ratio = float64(res.ObjectBytes) / float64(res.CheckinDeltaBytes)
		}
		rep.Rows = append(rep.Rows, []string{
			f(float64(res.ObjectBytes) / 1024),
			fmt.Sprintf("%d/%d", cfg.edits, cfg.parts),
			f(float64(res.ColdBytes) / 1024),
			fmt.Sprintf("%d", res.NotModifiedBytes),
			f(float64(res.CheckinDeltaBytes) / 1024),
			f(float64(res.CheckoutDeltaBytes) / 1024),
			fmt.Sprintf("%.1fx", ratio),
			fmt.Sprintf("%.2f", res.ColdLatency.Seconds()*1e3),
			fmt.Sprintf("%.2f", res.CachedLatency.Seconds()*1e3),
		})
	}
	rep.Notes = append(rep.Notes,
		"cold = full transfer to an empty cache; NM = re-checkout of a cached, unmodified version (O(hash) bytes)",
		"ckin Δ / ckout Δ = delta shipping for a small edit, verified by content hash on both ends",
		"full/Δ = full encoding over checkin delta; the ≥5x acceptance bar applies to the small-edit rows",
	)
	return rep, nil
}
