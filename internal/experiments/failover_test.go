package experiments

import (
	"testing"
	"time"
)

// TestE20ReplicationLatencyBounds is the CI gate on synchronous replication
// (acceptance bound of the E20 experiment, reduced size): a commit that waits
// for the standby's ack must stay within 1.5x of the unreplicated checkin p99
// (with a small absolute floor so fsync-queue noise on shared runners cannot
// fail the gate). The ship rides the same group-commit batch as the local
// WAL write, so the ack adds one in-process round trip, not a second fsync.
func TestE20ReplicationLatencyBounds(t *testing.T) {
	if raceEnabled {
		// Race instrumentation inflates the replication pump's CPU cost and
		// with it the latency ratios; correctness under -race is covered by
		// the repl and core test suites. The perf gate runs unraced.
		t.Skip("perf bounds are not meaningful under the race detector")
	}
	const checkins = 800
	// Shared single-CPU runners see CPU theft and filesystem-journal
	// interference from sibling processes; retries separate a genuinely
	// regressed ship path from a noisy window.
	const attempts = 3
	var base, sync ReplCheckinResult
	pass := false
	for a := 0; a < attempts && !pass; a++ {
		var err error
		if base, err = RunReplicatedCheckins("unreplicated", checkins); err != nil {
			t.Fatal(err)
		}
		if sync, err = RunReplicatedCheckins("sync", checkins); err != nil {
			t.Fatal(err)
		}
		bound := base.P99 * 3 / 2
		// Absolute floor: both configurations are fsync-bound, so a single
		// slow journal commit inside the sync window would fail a pure ratio
		// on noise alone.
		if floor := base.P99 + 3*time.Millisecond; bound < floor {
			bound = floor
		}
		t.Logf("attempt %d: unreplicated p99 %v, sync p99 %v (bound %v)", a+1, base.P99, sync.P99, bound)
		pass = sync.P99 <= bound
	}
	if !pass {
		t.Fatalf("sync-replicated checkin p99 %v vs unreplicated %v regressed past the 1.5x acceptance bound",
			sync.P99, base.P99)
	}
}

// TestE20FailoverTakeoverBound gates the designer-visible outage of a primary
// kill: heartbeat-driven detection, standby promotion, epoch adoption and
// session rejoin must land the next committed checkin within 2x the heartbeat
// period (the same bound the scenario matrix holds client takeover to).
func TestE20FailoverTakeoverBound(t *testing.T) {
	if raceEnabled {
		t.Skip("perf bounds are not meaningful under the race detector")
	}
	const heartbeat = 50 * time.Millisecond
	const attempts = 3
	var last FailoverTiming
	pass := false
	for a := 0; a < attempts && !pass; a++ {
		ft, err := RunFailoverTakeover(heartbeat, 20)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: takeover in %v (heartbeat %v, epoch %d)", a+1, ft.Takeover, ft.Heartbeat, ft.Epoch)
		if ft.Epoch == 0 {
			t.Fatalf("promotion did not bump the replication epoch: %+v", ft)
		}
		last = ft
		pass = ft.Takeover <= 2*heartbeat
	}
	if !pass {
		t.Fatalf("client-driven takeover took %v, over the 2x heartbeat bound (%v)", last.Takeover, 2*heartbeat)
	}
}

// TestE20SmallSmoke keeps the full experiment path (all three designs and the
// takeover measurement) exercised at a tiny size in the regular test run.
func TestE20SmallSmoke(t *testing.T) {
	for _, design := range replDesigns {
		res, err := RunReplicatedCheckins(design, 10)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if res.P50 <= 0 || res.P99 <= 0 {
			t.Fatalf("%s: degenerate percentiles: %+v", design, res)
		}
	}
	ft, err := RunFailoverTakeover(20*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Takeover <= 0 || ft.Epoch == 0 {
		t.Fatalf("degenerate takeover measurement: %+v", ft)
	}
}
