package experiments

import (
	"errors"
	"fmt"

	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// newSystem boots a volatile system with the VLSI catalog.
func newSystem() (*core.System, error) {
	return core.NewSystem(core.Options{RegisterTypes: vlsi.RegisterCatalog})
}

// planDOP runs one real DOP that derives a floorplan version for the DA.
func planDOP(ws *core.Workstation, da string, fp *vlsi.Floorplan, parent version.ID) (version.ID, error) {
	dop, err := ws.Begin("", da)
	if err != nil {
		return "", err
	}
	root := parent == ""
	if !root {
		if _, err := dop.Checkout(parent, false); err != nil {
			return "", err
		}
	}
	if err := dop.SetWorkspace(vlsi.FloorplanToObject(fp)); err != nil {
		return "", err
	}
	id, err := dop.Checkin(version.StatusWorking, root)
	if err != nil {
		return "", err
	}
	return id, dop.Commit()
}

// E1LevelStack reproduces Fig. 1: one chip-planning design activity runs
// through all three abstraction levels, and the report counts the
// operations observed at each level plus the repository traffic beneath.
func E1LevelStack() (Report, error) {
	r := Report{ID: "E1", Title: "Fig. 1 — abstraction levels of the CONCORD model"}
	sys, err := newSystem()
	if err != nil {
		return r, err
	}
	defer sys.Close()
	cm := sys.CM()
	spec := feature.MustSpec(feature.Range("area-limit", "area", 0, 5000))
	if err := cm.InitDesign(coop.Config{ID: "chip-da", DOT: vlsi.DOTChip, Spec: spec, Designer: "alice", DC: "chip-planning"}); err != nil {
		return r, err
	}
	if err := cm.Start("chip-da"); err != nil {
		return r, err
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return r, err
	}
	// DC level: the chip-planning script of Fig. 3.
	cell := vlsi.GenerateHierarchy(3, "chip", 4, 1)
	shapes := vlsi.ShapesForChildren(cell, 5)
	var last version.ID
	teOps := 0
	runner := func(ctx *script.Ctx, op script.Op, params map[string]string) (string, error) {
		switch op.Name {
		case "bipartition", "sizing", "dimensioning", "global-routing":
			fp, err := vlsi.PlanChip(cell.Netlist, vlsi.Interface{Cell: cell.Name}, shapes)
			if err != nil {
				return "", err
			}
			id, err := planDOP(ws, "chip-da", fp, last)
			if err != nil {
				return "", err
			}
			last = id
			teOps += 4 // begin, checkout/stage, 2PC, end
			return string(id), nil
		case "evaluate":
			if _, err := cm.Evaluate("chip-da", last); err != nil {
				return "", err
			}
			return "", nil
		}
		return "", fmt.Errorf("unknown op %s", op.Name)
	}
	s := script.Seq{Steps: []script.Node{
		script.Op{Name: "bipartition", IsDOP: true},
		script.Op{Name: "sizing", IsDOP: true},
		script.Op{Name: "dimensioning", IsDOP: true},
		script.Op{Name: "global-routing", IsDOP: true},
		script.Op{Name: "evaluate"},
	}}
	dm, err := ws.NewDesignManager(script.Config{DA: "chip-da", Script: s, Runner: runner})
	if err != nil {
		return r, err
	}
	if err := dm.Run(); err != nil {
		return r, err
	}
	acOps := 0
	for _, c := range cm.OpCounts() {
		acOps += c
	}
	dcRun, _ := dm.Engine().Stats()
	r.Header = []string{"level", "component", "operations"}
	r.Rows = [][]string{
		{"AC", "cooperation manager", d(acOps)},
		{"DC", "design manager (script ops)", d(dcRun)},
		{"TE", "transaction manager (DOP interactions)", d(teOps)},
		{"repository", "stored DOVs", d(sys.Repo().DOVCount())},
	}
	r.Notes = append(r.Notes, "level-spanning control: one DA → scripted DOPs → ACID checkins")
	return r, nil
}

// E2DesignPlane reproduces Fig. 2: a full traversal of the design plane —
// behaviour → structure → floor plan → mask layout across the cell
// hierarchy, one row per tool application.
func E2DesignPlane() (Report, error) {
	r := Report{ID: "E2", Title: "Fig. 2 — design plane traversal (domains × hierarchy)"}
	r.Header = []string{"tool", "from", "to", "level", "artifact"}

	behavior := vlsi.Behavior{Name: "chip", Assigns: []vlsi.Assign{
		{Target: "sum", Expr: "a + b"},
		{Target: "prod", Expr: "a * b"},
		{Target: "out", Expr: "sum2 & prod2"},
	}}
	// Tool 1: structure synthesis (behaviour → structure).
	nl, err := vlsi.Synthesize(behavior)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, []string{"1 " + vlsi.ToolStructureSynthesis.String(),
		vlsi.DomainBehavior.String(), vlsi.DomainStructure.String(), "chip",
		fmt.Sprintf("netlist: %d instances, %d nets", len(nl.Instances), len(nl.Nets))})
	// Tool 2: repartitioning (structure → structure).
	a, b := vlsi.Repartition(nl)
	r.Rows = append(r.Rows, []string{"2 " + vlsi.ToolRepartitioning.String(),
		vlsi.DomainStructure.String(), vlsi.DomainStructure.String(), "module",
		fmt.Sprintf("groups: %d / %d instances", len(a), len(b))})
	// Tool 3: shape function generation (structure → floor plan).
	shapes := make(map[string]vlsi.ShapeFunction, len(nl.Instances))
	alt := 0
	for _, in := range nl.Instances {
		sf := vlsi.GenerateShapes(in.Area, 5)
		shapes[in.Name] = sf
		alt += len(sf.Shapes)
	}
	r.Rows = append(r.Rows, []string{"3 " + vlsi.ToolShapeFunction.String(),
		vlsi.DomainStructure.String(), vlsi.DomainFloorPlan.String(), "block",
		fmt.Sprintf("%d shape alternatives", alt)})
	// Tool 4: pad frame editing.
	pf := vlsi.EditPadFrame("chip", vlsi.Shape{W: 40, H: 40}, 16, 1.5)
	r.Rows = append(r.Rows, []string{"4 " + vlsi.ToolPadFrameEditor.String(),
		vlsi.DomainFloorPlan.String(), vlsi.DomainFloorPlan.String(), "chip",
		fmt.Sprintf("%d pads placed", len(pf.Pads))})
	// Tool 5: chip planning.
	fp, err := vlsi.PlanChip(nl, vlsi.Interface{Cell: "chip", Pins: 16}, shapes)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, []string{"5 " + vlsi.ToolChipPlanner.String(),
		vlsi.DomainFloorPlan.String(), vlsi.DomainFloorPlan.String(), "chip",
		fmt.Sprintf("floorplan %.1fx%.1f, wire %.1f", fp.Outline.W, fp.Outline.H, fp.WireLength)})
	// Tool 6: cell synthesis (floor plan → mask layout, stdcell level).
	cells := make(map[string]*vlsi.MaskLayout)
	rects := 0
	for _, p := range fp.Placements {
		ml := vlsi.SynthesizeCell(p.Name, vlsi.Shape{W: p.Rect.W, H: p.Rect.H})
		cells[p.Name] = ml
		rects += len(ml.Rects)
	}
	r.Rows = append(r.Rows, []string{"6 " + vlsi.ToolCellSynthesis.String(),
		vlsi.DomainFloorPlan.String(), vlsi.DomainMaskLayout.String(), "stdcell",
		fmt.Sprintf("%d cell layouts, %d rects", len(cells), rects)})
	// Tool 7: chip assembly.
	ml := vlsi.AssembleChip(fp, pf, cells)
	r.Rows = append(r.Rows, []string{"7 " + vlsi.ToolChipAssembly.String(),
		vlsi.DomainMaskLayout.String(), vlsi.DomainMaskLayout.String(), "chip",
		fmt.Sprintf("mask: %d rects, %d layers, area %.1f", len(ml.Rects), ml.Layers, ml.Area())})
	r.Notes = append(r.Notes, "left-to-right traversal of the design plane, all 7 tools exercised")
	return r, nil
}

// E3ChipPlanning reproduces Fig. 3: the chip-planning work flow
// (bipartitioning → sizing → dimensioning → global routing) with designer
// re-iterations, reporting floorplan quality per iteration.
func E3ChipPlanning() (Report, error) {
	r := Report{ID: "E3", Title: "Fig. 3 — chip planning work flow"}
	r.Header = []string{"iteration", "cut nets", "outline", "area", "wire length"}

	cell := vlsi.GenerateHierarchy(11, "O", 6, 1)
	shapes := vlsi.ShapesForChildren(cell, 3)
	iterations := 0
	var lastFP *vlsi.Floorplan
	runner := func(ctx *script.Ctx, op script.Op, params map[string]string) (string, error) {
		if op.Name != "chip-plan" {
			return "", errors.New("unknown op")
		}
		iterations++
		// Each re-iteration refines the shape alternatives (the designer
		// achieving "optimal space exploitation", Sect. 3).
		shapes = vlsi.ShapesForChildren(cell, 2+iterations*2)
		fp, err := vlsi.PlanChip(cell.Netlist, vlsi.Interface{Cell: "O"}, shapes)
		if err != nil {
			return "", err
		}
		lastFP = fp
		r.Rows = append(r.Rows, []string{
			d(iterations), d(fp.CutNets),
			fmt.Sprintf("%.1fx%.1f", fp.Outline.W, fp.Outline.H),
			f(fp.Area()), f(fp.WireLength),
		})
		return "fp", nil
	}
	s := script.Loop{Name: "replan", Body: script.Op{Name: "chip-plan", IsDOP: true}, Max: 3}
	// Designer policy: always re-iterate (the Max bound stops at 3).
	eng := script.NewEngine("fig3", nil, alwaysIterate{}, runner, nil, nil)
	if err := eng.Run(s); err != nil {
		return r, err
	}
	if lastFP == nil {
		return r, errors.New("no floorplan produced")
	}
	r.Notes = append(r.Notes,
		"inputs per Fig. 3: module/net list, shape functions, floorplan interface",
		"outputs: floorplan contents + subcell interfaces; area shrinks with refined shape functions")
	return r, nil
}

// alwaysIterate is a designer policy that repeats every loop (bounded by the
// loop's Max) and otherwise behaves like the automatic designer.
type alwaysIterate struct{ script.AutoDesigner }

// ContinueLoop implements script.Designer.
func (alwaysIterate) ContinueLoop(_, _ string, _ int) (bool, error) { return true, nil }

// E4DAHierarchy reproduces Fig. 4: Init_Design and iterated Create_Sub_DA
// spanning a DA hierarchy with part-of-consistent DOTs, including
// overlapping sub-DA responsibilities.
func E4DAHierarchy() (Report, error) {
	r := Report{ID: "E4", Title: "Fig. 4 — design activities and DA hierarchies"}
	r.Header = []string{"DA", "DOT", "parent", "state", "spec features"}
	sys, err := newSystem()
	if err != nil {
		return r, err
	}
	defer sys.Close()
	cm := sys.CM()
	if err := cm.InitDesign(coop.Config{ID: "DA1", DOT: vlsi.DOTChip, Spec: feature.MustSpec(feature.Range("area", "area", 0, 4000)), Designer: "alice"}); err != nil {
		return r, err
	}
	if err := cm.Start("DA1"); err != nil {
		return r, err
	}
	// DA2 and DA3 get overlapping cell responsibilities (identical DOTs,
	// Fig. 4b).
	for _, id := range []string{"DA2", "DA3"} {
		if err := cm.CreateSubDA("DA1", coop.Config{ID: id, DOT: vlsi.DOTCell, Spec: feature.MustSpec(feature.Range("area", "area", 0, 2000)), Designer: "bob"}); err != nil {
			return r, err
		}
	}
	if err := cm.Start("DA2"); err != nil {
		return r, err
	}
	if err := cm.CreateSubDA("DA2", coop.Config{ID: "DA4", DOT: vlsi.DOTStdCell, Designer: "carol"}); err != nil {
		return r, err
	}
	hier, err := cm.Hierarchy("DA1")
	if err != nil {
		return r, err
	}
	for _, id := range hier {
		da, err := cm.Get(id)
		if err != nil {
			return r, err
		}
		parent := da.Parent
		if parent == "" {
			parent = "(top)"
		}
		r.Rows = append(r.Rows, []string{da.ID, da.DOT, parent, da.State.String(), d(da.Spec.Len())})
	}
	r.Notes = append(r.Notes, "sub-DA DOTs verified as parts of the super-DA DOT (delegation legality)")
	return r, nil
}
