//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// perf-bound gates skip themselves under it (instrumentation turns the
// fsync-dominated write path CPU-bound and voids the measured ratios).
const raceEnabled = false
