package experiments

import "testing"

// TestE15ReadScalingBounds is the CI gate on the MVCC read path (acceptance
// bounds of the E15 experiment, run at a reduced size): at 8 concurrent
// readers the lock-free index must at least double the aggregate server-side
// checkout throughput of the locked+cloning baseline and at least halve its
// allocations per checkout. Throughput asserts a deliberately looser bound
// (1.3x) so shared CI runners do not flake; the committed BENCH_E15.json
// records the full-size numbers.
func TestE15ReadScalingBounds(t *testing.T) {
	const readers, rounds = 8, 500
	base, err := RunCheckoutScaling(true, readers, rounds, ModeServer)
	if err != nil {
		t.Fatal(err)
	}
	mvcc, err := RunCheckoutScaling(false, readers, rounds, ModeServer)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %.0f ops/s, %.1f allocs/op; mvcc: %.0f ops/s, %.1f allocs/op (speedup %.2fx)",
		base.OpsPerSec(), base.AllocsPerOp, mvcc.OpsPerSec(), mvcc.AllocsPerOp,
		mvcc.OpsPerSec()/base.OpsPerSec())
	if mvcc.OpsPerSec() < 1.3*base.OpsPerSec() {
		t.Fatalf("mvcc read path %.0f ops/s vs baseline %.0f ops/s: below the 1.3x CI floor",
			mvcc.OpsPerSec(), base.OpsPerSec())
	}
	if mvcc.AllocsPerOp > base.AllocsPerOp/2 {
		t.Fatalf("mvcc read path allocates %.1f/op vs baseline %.1f/op: less than 50%% reduction",
			mvcc.AllocsPerOp, base.AllocsPerOp)
	}
}

// TestE15EndToEndModes smoke-tests the wire-level modes at a small size so
// the hot (NotModified) and cold (full transfer) loops stay exercised.
func TestE15EndToEndModes(t *testing.T) {
	for _, mode := range []ReadPathMode{ModeE2EHot, ModeE2ECold} {
		res, err := RunCheckoutScaling(false, 2, 10, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Checkouts != 20 || res.OpsPerSec() <= 0 {
			t.Fatalf("%s: implausible result %+v", mode, res)
		}
	}
}
