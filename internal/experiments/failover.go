package experiments

import (
	"fmt"
	"os"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// ReplCheckinResult is end-to-end checkin latency (DOP begin → derive
// checkout → 2PC checkin → commit) under one replication design.
type ReplCheckinResult struct {
	// P50/P99 are per-checkin latency percentiles.
	P50, P99 time.Duration
}

// FailoverTiming is the outcome of one client-driven takeover measurement.
type FailoverTiming struct {
	// Heartbeat is the workstation lease-renewal period the run used (the
	// failure-detection clock).
	Heartbeat time.Duration
	// Takeover is the designer-visible outage: primary kill → the next
	// checkin commits at the promoted standby.
	Takeover time.Duration
	// Epoch is the replication epoch after the promotion.
	Epoch uint64
}

// replDesigns are the E20 configurations, in report order.
var replDesigns = []string{"unreplicated", "trailing", "sync"}

// bootReplSystem deploys one server (optionally with a warm standby), one
// design area and one workstation, and seeds a root version to derive from.
func bootReplSystem(dir, design string, heartbeat time.Duration) (*core.System, *core.Workstation, version.ID, error) {
	opts := core.Options{
		Dir:           dir,
		RegisterTypes: vlsi.RegisterCatalog,
		// Only the server-side commit path is under test; workstation-local
		// recovery logs would add private fsyncs that obscure it.
		VolatileWorkstations: true,
	}
	switch design {
	case "trailing":
		opts.Replicated = true
	case "sync":
		opts.Replicated = true
		opts.SyncReplication = true
	}
	if heartbeat > 0 {
		opts.HeartbeatEvery = heartbeat
		opts.LeaseTTL = 10 * heartbeat
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, nil, "", err
	}
	fail := func(err error) (*core.System, *core.Workstation, version.ID, error) {
		sys.Close()
		return nil, nil, "", err
	}
	if err := sys.CM().InitDesign(coop.Config{ID: "da", DOT: vlsi.DOTFloorplan, Designer: "designer"}); err != nil {
		return fail(err)
	}
	if err := sys.CM().Start("da"); err != nil {
		return fail(err)
	}
	ws, err := sys.AddWorkstation("ws")
	if err != nil {
		return fail(err)
	}
	root, err := replCheckin(ws, "")
	if err != nil {
		return fail(err)
	}
	if opts.SyncReplication {
		// Measure sync mode, not the catch-up window: wait until the sender
		// reports every commit is acknowledged by the standby inline.
		deadline := time.Now().Add(10 * time.Second)
		for sys.ReplHealth().Mode != "sync" {
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("sender never reached sync mode"))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return sys, ws, root, nil
}

// replCheckin runs one full checkout → modify → checkin cycle and returns
// the committed version (a root checkin when parent is empty).
func replCheckin(ws *core.Workstation, parent version.ID) (version.ID, error) {
	dop, err := ws.Begin("", "da")
	if err != nil {
		return "", err
	}
	if parent != "" {
		if _, err := dop.Checkout(parent, true); err != nil {
			_ = dop.Abort()
			return "", err
		}
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str(string(parent)+"+")).
		Set("area", catalog.Float(100))
	if err := dop.SetWorkspace(obj); err != nil {
		_ = dop.Abort()
		return "", err
	}
	id, err := dop.Checkin(version.StatusWorking, parent == "")
	if err != nil {
		_ = dop.Abort()
		return "", err
	}
	return id, dop.Commit()
}

// RunReplicatedCheckins measures what warm-standby replication costs the
// designers (DESIGN.md §5.4, E20): `checkins` chained checkin cycles through
// the full workstation path under one design — "unreplicated" (no standby),
// "trailing" (asynchronous shipping), or "sync" (every commit waits for the
// standby's ack) — each timed individually.
func RunReplicatedCheckins(design string, checkins int) (ReplCheckinResult, error) {
	var res ReplCheckinResult
	dir, err := os.MkdirTemp("", "concord-e20")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	sys, ws, last, err := bootReplSystem(dir, design, 0)
	if err != nil {
		return res, err
	}
	defer sys.Close()
	samples := make([]time.Duration, 0, checkins)
	for i := 0; i < checkins; i++ {
		start := time.Now()
		id, err := replCheckin(ws, last)
		if err != nil {
			return res, fmt.Errorf("%s checkin %d: %w", design, i, err)
		}
		samples = append(samples, time.Since(start))
		last = id
	}
	res.P50 = percentile(samples, 0.50)
	res.P99 = percentile(samples, 0.99)
	return res, nil
}

// RunFailoverTakeover measures client-driven takeover (DESIGN.md §5.4, E20):
// a synchronously replicated deployment commits `warm` checkins, the primary
// is killed without restart, and the clock runs until the workstation's next
// checkin commits at the promoted standby — heartbeat-driven detection,
// promotion, epoch adoption and session rejoin included.
func RunFailoverTakeover(heartbeat time.Duration, warm int) (FailoverTiming, error) {
	res := FailoverTiming{Heartbeat: heartbeat}
	dir, err := os.MkdirTemp("", "concord-e20f")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	sys, ws, last, err := bootReplSystem(dir, "sync", heartbeat)
	if err != nil {
		return res, err
	}
	defer sys.Close()
	for i := 0; i < warm; i++ {
		id, err := replCheckin(ws, last)
		if err != nil {
			return res, fmt.Errorf("warm checkin %d: %w", i, err)
		}
		last = id
	}
	if err := sys.CrashServer(); err != nil {
		return res, err
	}
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	for {
		if _, err := replCheckin(ws, last); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("no checkin committed at the standby within %v of the primary kill", time.Since(start))
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Takeover = time.Since(start)
	res.Epoch = sys.ReplHealth().Epoch
	if h := sys.ReplHealth(); !h.StandbyPromoted {
		return res, fmt.Errorf("checkin committed but the standby was not promoted: %+v", h)
	}
	return res, nil
}

// E20Failover quantifies warm-standby replication (DESIGN.md §5.4): what
// synchronous WAL shipping costs each checkin against the unreplicated and
// trailing designs, and how long a designer is blocked when the primary dies
// and client-driven takeover promotes the standby.
func E20Failover() (Report, error) {
	rep := Report{
		ID:     "E20",
		Title:  "warm-standby replication: checkin cost by design and client-driven failover (DESIGN.md §5.4)",
		Header: []string{"design", "checkin p50", "checkin p99", "p99 vs unreplicated"},
	}
	const checkins = 600
	var basP99 time.Duration
	for _, design := range replDesigns {
		res, err := RunReplicatedCheckins(design, checkins)
		if err != nil {
			return rep, fmt.Errorf("E20 %s: %w", design, err)
		}
		ratio := "1.0x"
		if design == "unreplicated" {
			basP99 = res.P99
		} else if basP99 > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(res.P99)/float64(basP99))
		}
		rep.Rows = append(rep.Rows, []string{design, us(res.P50), us(res.P99), ratio})
		rep.Metrics = append(rep.Metrics,
			Metric{Name: fmt.Sprintf("checkin_p50_us/design=%s", design), Value: float64(res.P50.Nanoseconds()) / 1e3, Unit: "us"},
			Metric{Name: fmt.Sprintf("checkin_p99_us/design=%s", design), Value: float64(res.P99.Nanoseconds()) / 1e3, Unit: "us"},
		)
	}
	const heartbeat = 50 * time.Millisecond
	ft, err := RunFailoverTakeover(heartbeat, 20)
	if err != nil {
		return rep, fmt.Errorf("E20 failover: %w", err)
	}
	rep.Metrics = append(rep.Metrics,
		Metric{Name: "failover_takeover_ms", Value: float64(ft.Takeover.Nanoseconds()) / 1e6, Unit: "ms"},
		Metric{Name: "failover_heartbeat_ms", Value: float64(ft.Heartbeat.Nanoseconds()) / 1e6, Unit: "ms"},
	)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d timed checkins per design through the full workstation path (DOP begin, derive checkout, 2PC checkin, commit)", checkins),
		"sync = every commit waits for the standby's ack; trailing = asynchronous shipping bounded by ReplLagMax",
		fmt.Sprintf("client-driven takeover after a primary kill: %v to the next committed checkin (heartbeat %v, epoch %d)",
			ft.Takeover.Round(time.Millisecond), ft.Heartbeat, ft.Epoch),
	)
	return rep, nil
}
