// Package experiments implements the reproduction harness: one function per
// figure of the paper (E1-E8), three synthetic quantifications of its
// qualitative claims (E9-E11), and the scaling scenarios E12
// (multi-workstation throughput), E13 (bounded-time restart), E14
// (workstation cache + delta shipping), E15 (MVCC read-path scaling), E16
// (sharded write path + pipelined replay), E18 (multiplexed wire protocol
// over real sockets), E19 (writer latency under non-quiescent
// checkpointing) and E20 (warm-standby replication cost and client-driven
// failover).
// Each experiment returns a Report whose rows cmd/concordbench prints and
// whose execution bench_test.go times; DESIGN.md §6 is the index,
// EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
)

// Report is the tabular outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title names the reproduced artifact.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
	// Notes records observations (expected shape, caveats).
	Notes []string
	// Metrics are the machine-readable results emitted by concordbench
	// -json (the perf trajectory record; see BENCH_E15.json).
	Metrics []Metric
}

// Metric is one machine-readable measurement of an experiment.
type Metric struct {
	// Name identifies the measurement, with /key=value qualifiers (e.g.
	// "checkout_ops_per_sec/path=server/readers=8/design=mvcc").
	Name string `json:"metric"`
	// Value is the measured quantity.
	Value float64 `json:"value"`
	// Unit names the measurement unit ("ops/s", "allocs/op", "bytes").
	Unit string `json:"unit"`
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.1f", v) }

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }
