package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// MultiWorkstationResult is the outcome of one RunMultiWorkstation
// configuration.
type MultiWorkstationResult struct {
	// Workstations is the concurrent workstation count.
	Workstations int
	// Checkins is the total number of committed checkin transactions.
	Checkins int
	// Elapsed is the wall-clock time of the parallel phase.
	Elapsed time.Duration
	// WALAppends and WALBatches are the server repository log's counters;
	// appends/batches is the group-commit factor the run achieved.
	WALAppends, WALBatches uint64
}

// OpsPerSec reports aggregate checkin throughput.
func (r MultiWorkstationResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Checkins) / r.Elapsed.Seconds()
}

// RunMultiWorkstation boots one durable server and n workstations, then has
// every workstation run `rounds` checkout → modify → checkin cycles (each a
// full DOP with 2PC) against its own DA, all in parallel. serialized selects
// the pre-concurrency server core (single-shard lock table, one fsync per
// WAL record) as the baseline; the default is the concurrent core (sharded
// locks, group-commit WAL). Used by E12 and the concurrency benchmarks.
func RunMultiWorkstation(serialized bool, n, rounds int) (MultiWorkstationResult, error) {
	res := MultiWorkstationResult{Workstations: n}
	dir, err := os.MkdirTemp("", "concord-e12")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	sys, err := core.NewSystem(core.Options{
		Dir:           dir,
		RegisterTypes: vlsi.RegisterCatalog,
		Serialized:    serialized,
		// Only the shared server core is under test; workstation-local
		// recovery logs would add private fsyncs that obscure it.
		VolatileWorkstations: true,
	})
	if err != nil {
		return res, err
	}
	defer sys.Close()

	type site struct {
		ws   *core.Workstation
		da   string
		last version.ID
	}
	sites := make([]*site, n)
	for i := range sites {
		da := fmt.Sprintf("da-%d", i)
		if err := sys.CM().InitDesign(coop.Config{ID: da, DOT: vlsi.DOTFloorplan, Designer: fmt.Sprintf("designer-%d", i)}); err != nil {
			return res, err
		}
		if err := sys.CM().Start(da); err != nil {
			return res, err
		}
		ws, err := sys.AddWorkstation(fmt.Sprintf("ws-%d", i))
		if err != nil {
			return res, err
		}
		// Seed the derivation graph with a root version to check out from.
		dop, err := ws.Begin("", da)
		if err != nil {
			return res, err
		}
		obj := catalog.NewObject(vlsi.DOTFloorplan).
			Set("cell", catalog.Str(da)).
			Set("area", catalog.Float(100))
		if err := dop.SetWorkspace(obj); err != nil {
			return res, err
		}
		root, err := dop.Checkin(version.StatusWorking, true)
		if err != nil {
			return res, err
		}
		if err := dop.Commit(); err != nil {
			return res, err
		}
		sites[i] = &site{ws: ws, da: da, last: root}
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for _, s := range sites {
		wg.Add(1)
		go func(s *site) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				dop, err := s.ws.Begin("", s.da)
				if err != nil {
					errs <- fmt.Errorf("%s round %d begin: %w", s.da, r, err)
					return
				}
				obj, err := dop.Checkout(s.last, true)
				if err != nil {
					errs <- fmt.Errorf("%s round %d checkout: %w", s.da, r, err)
					return
				}
				obj.Set("area", catalog.Float(100-float64(r)))
				if err := dop.SetWorkspace(obj); err != nil {
					errs <- err
					return
				}
				id, err := dop.Checkin(version.StatusWorking, false)
				if err != nil {
					errs <- fmt.Errorf("%s round %d checkin: %w", s.da, r, err)
					return
				}
				if err := dop.Commit(); err != nil {
					errs <- fmt.Errorf("%s round %d commit: %w", s.da, r, err)
					return
				}
				s.last = id
			}
		}(s)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.WALAppends, res.WALBatches, _ = sys.Repo().LogStats()
	close(errs)
	if err := <-errs; err != nil {
		return res, err
	}
	res.Checkins = n * rounds
	return res, nil
}

// E12MultiWorkstation measures aggregate checkout/modify/checkin throughput
// of N concurrent workstations against one server-TM, comparing the seed's
// fully serialized server core (global WAL mutex with one fsync per record,
// single-shard lock table, global CM mutex) with the concurrent core
// (group-commit WAL, sharded lock manager, per-DA CM locking). The paper's
// Sect. 5.1 workstation/server architecture explicitly targets many
// designers working in parallel; this experiment quantifies how far the
// server core scales with them.
func E12MultiWorkstation() (Report, error) {
	rep := Report{
		ID:     "E12",
		Title:  "multi-workstation checkout/checkin throughput (Sect. 5.1/5.2)",
		Header: []string{"workstations", "checkins", "serialized ops/s", "concurrent ops/s", "speedup"},
	}
	const rounds = 20
	for _, n := range []int{1, 2, 4, 8} {
		ser, err := RunMultiWorkstation(true, n, rounds)
		if err != nil {
			return rep, fmt.Errorf("E12 serialized N=%d: %w", n, err)
		}
		con, err := RunMultiWorkstation(false, n, rounds)
		if err != nil {
			return rep, fmt.Errorf("E12 concurrent N=%d: %w", n, err)
		}
		speedup := 0.0
		if ser.OpsPerSec() > 0 {
			speedup = con.OpsPerSec() / ser.OpsPerSec()
		}
		rep.Rows = append(rep.Rows, []string{
			d(n), d(con.Checkins), f(ser.OpsPerSec()), f(con.OpsPerSec()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	rep.Notes = append(rep.Notes,
		"serialized = single-shard lock table + one fsync per WAL record (the seed design)",
		"concurrent = sharded lock manager + group-commit WAL + per-DA CM locking",
		"each checkin is a full DOP: Begin, checkout(derive), modify, 2PC checkin, commit",
	)
	return rep, nil
}
