package experiments

import (
	"fmt"
	"os"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// E5Delegation reproduces Fig. 5: DA1 plans cell O with subcells A..D,
// delegates the subcell planning to DA2..DA5, DA2 discovers its area is
// insufficient (Sub_DA_Impossible_Spec), DA1 shifts area from DA3 to DA2
// (Modify_Sub_DA_Spec), both replan and terminate successfully.
func E5Delegation() (Report, error) {
	r := Report{ID: "E5", Title: "Fig. 5 — delegation scenario within chip planning"}
	r.Header = []string{"phase", "DA", "event", "detail"}
	sys, err := newSystem()
	if err != nil {
		return r, err
	}
	defer sys.Close()
	cm := sys.CM()
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return r, err
	}
	row := func(phase, da, event, detail string) {
		r.Rows = append(r.Rows, []string{phase, da, event, detail})
	}
	// DA1: plan the CUD O with subcells A..D.
	if err := cm.InitDesign(coop.Config{ID: "DA1", DOT: vlsi.DOTChip,
		Spec: feature.MustSpec(feature.Range("area-limit", "area", 0, 200)), Designer: "alice"}); err != nil {
		return r, err
	}
	if err := cm.Start("DA1"); err != nil {
		return r, err
	}
	nl := &vlsi.Netlist{Name: "O", Instances: []vlsi.Instance{
		{Name: "A", Kind: "cell", Area: 60}, {Name: "B", Kind: "cell", Area: 40},
		{Name: "C", Kind: "cell", Area: 30}, {Name: "D", Kind: "cell", Area: 20},
	}, Nets: []vlsi.Net{
		{Name: "n1", Pins: []string{"A", "B"}}, {Name: "n2", Pins: []string{"B", "C"}},
		{Name: "n3", Pins: []string{"C", "D"}}, {Name: "n4", Pins: []string{"A", "D"}},
	}}
	fp, err := vlsi.PlanChip(nl, vlsi.Interface{Cell: "O"}, nil)
	if err != nil {
		return r, err
	}
	fpID, err := planDOP(ws, "DA1", fp, "")
	if err != nil {
		return r, err
	}
	row("plan", "DA1", "chip planner applied to O", fmt.Sprintf("floorplan %s: area %.1f", fpID, fp.Area()))
	// Delegate the subcells: the floorplan contents define each sub-DA's
	// area feature.
	subArea := map[string]float64{}
	for _, p := range fp.Placements {
		subArea[p.Name] = p.Rect.Area()
	}
	subs := []struct{ da, cell string }{{"DA2", "A"}, {"DA3", "B"}, {"DA4", "C"}, {"DA5", "D"}}
	for _, s := range subs {
		spec := feature.MustSpec(feature.Range("area-limit", "area", 0, subArea[s.cell]))
		if err := cm.CreateSubDA("DA1", coop.Config{ID: s.da, DOT: vlsi.DOTCell, Spec: spec, Designer: s.da}); err != nil {
			return r, err
		}
		if err := cm.Start(s.da); err != nil {
			return r, err
		}
		row("delegate", s.da, "Create_Sub_DA + Start", fmt.Sprintf("cell %s, area budget %.1f", s.cell, subArea[s.cell]))
	}
	// DA2 plans cell A and finds the area insufficient.
	needA := subArea["A"] * 1.15
	if err := cm.SubDAImpossibleSpec("DA2", fmt.Sprintf("cell A needs %.1f", needA)); err != nil {
		return r, err
	}
	row("conflict", "DA2", "Sub_DA_Impossible_Spec", fmt.Sprintf("needs %.1f > budget %.1f", needA, subArea["A"]))
	// DA1 reacts: give DA2 more and DA3 less area (Fig. 5 resolution).
	delta := needA - subArea["A"]
	if err := cm.ModifySubDASpec("DA1", "DA2",
		feature.MustSpec(feature.Range("area-limit", "area", 0, subArea["A"]+delta))); err != nil {
		return r, err
	}
	if err := cm.ModifySubDASpec("DA1", "DA3",
		feature.MustSpec(feature.Range("area-limit", "area", 0, subArea["B"]-delta))); err != nil {
		return r, err
	}
	row("resolve", "DA1", "Modify_Sub_DA_Spec ×2", fmt.Sprintf("shift %.1f area from B to A", delta))
	// DA2..DA5 produce final versions within their (possibly new) budgets.
	for _, s := range subs {
		da, err := cm.Get(s.da)
		if err != nil {
			return r, err
		}
		limit, _ := da.Spec.Feature("area-limit")
		obj := catalog.NewObject(vlsi.DOTCell).
			Set("name", catalog.Str(s.cell)).
			Set("area", catalog.Float(limit.Max*0.95))
		dop, err := ws.Begin("", s.da)
		if err != nil {
			return r, err
		}
		if err := dop.SetWorkspace(obj); err != nil {
			return r, err
		}
		id, err := dop.Checkin(version.StatusWorking, true)
		if err != nil {
			return r, err
		}
		if err := dop.Commit(); err != nil {
			return r, err
		}
		q, err := cm.Evaluate(s.da, id)
		if err != nil {
			return r, err
		}
		if !q.Final() {
			return r, fmt.Errorf("sub-DA %s result not final", s.da)
		}
		if err := cm.SubDAReadyToCommit(s.da); err != nil {
			return r, err
		}
		if err := cm.TerminateSubDA("DA1", s.da); err != nil {
			return r, err
		}
		row("commit", s.da, "Ready_To_Commit + Terminate_Sub_DA", fmt.Sprintf("final %s, area %.1f", id, limit.Max*0.95))
	}
	da1, err := cm.Get("DA1")
	if err != nil {
		return r, err
	}
	row("inherit", "DA1", "scope-lock inheritance", fmt.Sprintf("%d final DOVs devolved", len(da1.InheritedFinals)))
	r.Notes = append(r.Notes, "replanning after the impossible-spec message uses modified area features, as in Sect. 4.1")
	return r, nil
}

// E6Scripts reproduces Fig. 6: (a) a partially undetermined script with an
// open region, and (b) a three-way alternative branch after shape-function
// generation, both driven by a scripted designer.
func E6Scripts() (Report, error) {
	r := Report{ID: "E6", Title: "Fig. 6 — sample scripts (open regions, alternative paths)"}
	r.Header = []string{"script", "decision", "executed operations"}

	run := func(name string, s script.Node, des script.Designer) (int, []string, error) {
		var ops []string
		runner := func(_ *script.Ctx, op script.Op, _ map[string]string) (string, error) {
			ops = append(ops, op.Name)
			return op.Name, nil
		}
		eng := script.NewEngine(name, nil, des, runner, nil, nil)
		if err := eng.Run(s); err != nil {
			return 0, nil, err
		}
		n, _ := eng.Stats()
		return n, ops, nil
	}
	// Fig. 6a: structure synthesis ... open ... chip assembly.
	scriptA := script.Seq{Steps: []script.Node{
		script.Op{Name: "structure-synthesis", IsDOP: true},
		script.Open{Name: "intermediate"},
		script.Op{Name: "chip-assembly", IsDOP: true},
	}}
	desA := &fixedDesigner{open: []script.Op{
		{Name: "repartitioning", IsDOP: true},
		{Name: "chip-planning", IsDOP: true},
	}}
	nA, opsA, err := run("fig6a", scriptA, desA)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, []string{"6a partially undetermined", "designer inserted 2 ops in open region", fmt.Sprintf("%v (%d ops)", opsA, nA)})
	// Fig. 6b: alternative paths after shape function generation.
	scriptB := script.Seq{Steps: []script.Node{
		script.Op{Name: "shape-function-generation", IsDOP: true},
		script.Alt{Name: "method", Labels: []string{"top-down", "bottom-up", "mixed"}, Branches: []script.Node{
			script.Op{Name: "plan-top-down", IsDOP: true},
			script.Op{Name: "plan-bottom-up", IsDOP: true},
			script.Op{Name: "plan-mixed", IsDOP: true},
		}},
	}}
	for choice := 0; choice < 3; choice++ {
		nB, opsB, err := run("fig6b", scriptB, &fixedDesigner{alt: choice})
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{"6b alternative paths", fmt.Sprintf("branch %d chosen", choice), fmt.Sprintf("%v (%d ops)", opsB, nB)})
	}
	r.Notes = append(r.Notes, "scripts allow several concrete execution sequences; the journal records each decision")
	return r, nil
}

// fixedDesigner returns canned decisions.
type fixedDesigner struct {
	alt  int
	open []script.Op
	pos  int
}

func (d *fixedDesigner) ChooseAlternative(_, _ string, _ []string) (int, error) { return d.alt, nil }
func (d *fixedDesigner) ContinueLoop(_, _ string, _ int) (bool, error)          { return false, nil }
func (d *fixedDesigner) NextOpenStep(_, _ string, _ int) (script.Op, bool, error) {
	if d.pos >= len(d.open) {
		return script.Op{}, true, nil
	}
	op := d.open[d.pos]
	d.pos++
	return op, false, nil
}

// E7StateGraph reproduces Fig. 7: the full 5-state × 15-operation legality
// matrix of the DA state/transition graph, cross-checked against a live CM.
func E7StateGraph() (Report, error) {
	r := Report{ID: "E7", Title: "Fig. 7 — simplified state/transition graph for a DA"}
	r.Header = []string{"op"}
	states := coop.AllStates()
	for _, s := range states {
		r.Header = append(r.Header, s.String())
	}
	abbrev := map[coop.State]string{
		coop.StateGenerated:           "gen",
		coop.StateActive:              "act",
		coop.StateNegotiating:         "neg",
		coop.StateReadyForTermination: "rft",
		coop.StateTerminated:          "term",
	}
	legalCount := 0
	for _, op := range coop.AllOps() {
		row := []string{fmt.Sprintf("%2d %s", int(op), op)}
		for _, s := range states {
			if next, ok := coop.Legal(s, op); ok {
				row = append(row, "→"+abbrev[next])
				legalCount++
			} else {
				row = append(row, "·")
			}
		}
		r.Rows = append(r.Rows, row)
	}
	// Live spot check: an actual CM rejects an illegal transition and
	// accepts a legal one.
	sys, err := newSystem()
	if err != nil {
		return r, err
	}
	defer sys.Close()
	cm := sys.CM()
	if err := cm.InitDesign(coop.Config{ID: "probe", DOT: vlsi.DOTChip}); err != nil {
		return r, err
	}
	if _, err := cm.Evaluate("probe", "x"); err == nil {
		return r, fmt.Errorf("live CM accepted Evaluate in state generated")
	}
	if err := cm.Start("probe"); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d legal (state, op) pairs; ops marked * in the figure arrive from cooperating DAs", legalCount),
		"live CM cross-check: illegal transition rejected, legal transition accepted")
	return r, nil
}

// E8FailureMatrix reproduces Fig. 8: the joint failure handling of the
// activity managers. Each row injects one crash and reports what the
// responsible manager recovered.
func E8FailureMatrix() (Report, error) {
	r := Report{ID: "E8", Title: "Fig. 8 — responsibilities and interplay of activity managers (failure matrix)"}
	r.Header = []string{"crash", "during", "recovering manager", "recovered state", "lost work"}
	dir, err := os.MkdirTemp("", "concord-e8")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)

	sys, err := core.NewSystem(core.Options{Dir: dir, RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		return r, err
	}
	defer sys.Close()
	cm := sys.CM()
	spec := feature.MustSpec(feature.Range("area-limit", "area", 0, 100))
	if err := cm.InitDesign(coop.Config{ID: "da1", DOT: vlsi.DOTFloorplan, Spec: spec, Designer: "alice"}); err != nil {
		return r, err
	}
	if err := cm.Start("da1"); err != nil {
		return r, err
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return r, err
	}

	// Scenario 1: workstation crash mid-DOP (TM recovery points).
	dop, err := ws.Begin("e8-dop", "da1")
	if err != nil {
		return r, err
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).Set("cell", catalog.Str("O")).Set("area", catalog.Float(90))
	if err := dop.SetWorkspace(obj); err != nil {
		return r, err
	}
	if err := dop.Save("rp"); err != nil { // recovery point after 1 work unit
		return r, err
	}
	if err := sys.CrashWorkstation("ws1"); err != nil {
		return r, err
	}
	ws, err = sys.AddWorkstation("ws1")
	if err != nil {
		return r, err
	}
	rec := ws.RecoveredDOPs()
	if len(rec) != 1 || catalog.NumAttr(rec[0].Workspace(), "area") != 90 {
		return r, fmt.Errorf("E8 scenario 1: DOP context not recovered")
	}
	if _, err := rec[0].Checkin(version.StatusWorking, true); err != nil {
		return r, err
	}
	if err := rec[0].Commit(); err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, []string{"workstation", "mid-DOP", "client-TM", "DOP context at last recovery point", "work since last recovery point"})

	// Scenario 2: workstation crash mid-script (DM journal).
	ops := 0
	runner := func(_ *script.Ctx, op script.Op, _ map[string]string) (string, error) {
		ops++
		return op.Name, nil
	}
	s2 := script.Seq{Steps: []script.Node{
		script.Op{Name: "op-a", IsDOP: true},
		script.Op{Name: "op-b", IsDOP: true},
		script.Op{Name: "op-c", IsDOP: true},
	}}
	dm, err := ws.NewDesignManager(script.Config{DA: "da1", Script: s2, Runner: runner})
	if err != nil {
		return r, err
	}
	// Run fully, then "crash" the workstation and rebuild the DM: the
	// journal must satisfy all ops without re-execution.
	if err := dm.Run(); err != nil {
		return r, err
	}
	opsBefore := ops
	if err := sys.CrashWorkstation("ws1"); err != nil {
		return r, err
	}
	ws, err = sys.AddWorkstation("ws1")
	if err != nil {
		return r, err
	}
	dm2, err := ws.NewDesignManager(script.Config{DA: "da1", Runner: runner})
	if err != nil {
		return r, err
	}
	if err := dm2.Run(); err != nil {
		return r, err
	}
	if ops != opsBefore {
		return r, fmt.Errorf("E8 scenario 2: %d ops re-executed after DM recovery", ops-opsBefore)
	}
	_, replayed := dm2.Engine().Stats()
	r.Rows = append(r.Rows, []string{"workstation", "mid-script", "design manager",
		fmt.Sprintf("script position (%d ops replayed from journal)", replayed), "none (forward recovery)"})

	// Scenario 3: server crash mid-cooperation (CM persistent hierarchy).
	if err := cm.CreateSubDA("da1", coop.Config{ID: "sub1", DOT: vlsi.DOTFloorplan, Spec: spec, Designer: "bob"}); err != nil {
		return r, err
	}
	if err := sys.CrashServer(); err != nil {
		return r, err
	}
	if err := sys.RestartServer(); err != nil {
		return r, err
	}
	sub, err := sys.CM().Get("sub1")
	if err != nil {
		return r, fmt.Errorf("E8 scenario 3: DA lost in server crash: %w", err)
	}
	if sub.Parent != "da1" {
		return r, fmt.Errorf("E8 scenario 3: hierarchy corrupted")
	}
	r.Rows = append(r.Rows, []string{"server", "mid-cooperation", "cooperation manager",
		"DA hierarchy, relationships, scopes (from repository)", "none (forced log writes)"})

	// Scenario 4: server crash mid-checkin 2PC (prepared but unresolved).
	dop4, err := ws.Begin("e8-2pc", "da1")
	if err != nil {
		return r, err
	}
	obj4 := catalog.NewObject(vlsi.DOTFloorplan).Set("cell", catalog.Str("O")).Set("area", catalog.Float(50))
	if err := dop4.SetWorkspace(obj4); err != nil {
		return r, err
	}
	if _, err := dop4.Checkin(version.StatusWorking, true); err != nil {
		return r, err
	}
	before := sys.Repo().DOVCount()
	if err := sys.CrashServer(); err != nil {
		return r, err
	}
	if err := sys.RestartServer(); err != nil {
		return r, err
	}
	if got := sys.Repo().DOVCount(); got != before {
		return r, fmt.Errorf("E8 scenario 4: committed DOVs lost (%d → %d)", before, got)
	}
	r.Rows = append(r.Rows, []string{"server", "mid-checkin (2PC)", "server-TM + coordinator",
		"committed DOVs durable; in-doubt resolved presumed-abort", "uncommitted checkin only"})
	r.Notes = append(r.Notes, "matches Fig. 8: TM recovers DOPs, DM recovers scripts, CM recovers the DA hierarchy")
	return r, nil
}
