package experiments

import (
	"fmt"
	"os"

	"concord/internal/baseline"
	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/rpc"
	"concord/internal/sim"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// E9Cooperation quantifies the paper's central claim (Sects. 1-2): with
// version-based cooperation, N designers sustain concurrent engineering
// where flat ACID serializes and a ConTracts-style system (no AC level)
// blocks dependent designers until whole activities commit.
func E9Cooperation() (Report, error) {
	r := Report{ID: "E9", Title: "cooperation vs. isolation: makespan for N designers (steps=6, dep every 2)"}
	r.Header = []string{"N", "CONCORD", "ConTracts-style", "flat ACID", "speedup vs flat", "CONCORD blocked", "messages"}
	for _, n := range []int{2, 4, 8, 16} {
		w := sim.Workload{Designers: n, Steps: 6, DepEvery: 2, BaseDuration: 10, Jitter: 2, Seed: 42}
		sys, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
		if err != nil {
			return r, err
		}
		concord, err := sim.RunCooperative(sys, w)
		sys.Close()
		if err != nil {
			return r, err
		}
		sys2, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
		if err != nil {
			return r, err
		}
		ct, err := baseline.RunConTractsStyle(sys2.Repo(), w)
		if err != nil {
			sys2.Close()
			return r, err
		}
		flat, err := baseline.RunFlatACID(sys2.Repo(), w)
		sys2.Close()
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			d(n), f(concord.Makespan), f(ct.Makespan), f(flat.Makespan),
			fmt.Sprintf("%.1fx", flat.Makespan/concord.Makespan),
			f(concord.Blocked), d(concord.Messages),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: CONCORD ≈ flat/N (near-linear), ConTracts-style degrades with dependencies, flat serializes",
		"CONCORD rows execute the full live stack (real DOPs, Evaluate/Propagate/Require)")
	return r, nil
}

// E10CommitProtocols measures the two-phase commit engine and exactly-once
// RPC under message loss (Sects. 5.2, 6): all transactions must commit with
// exactly-once effects; the message overhead grows with the loss rate.
func E10CommitProtocols() (Report, error) {
	r := Report{ID: "E10", Title: "2PC + transactional RPC under message loss"}
	r.Header = []string{"loss prob", "transactions", "committed", "effects (want=tx)", "prepare msgs", "commit msgs", "rpc attempts"}
	const txCount = 40
	for _, loss := range []float64{0, 0.01, 0.05, 0.2} {
		tr := rpc.NewInProc(rpc.FaultPlan{DropRequest: loss, DropResponse: loss, Seed: 7})
		res := &countingResource{}
		part, err := rpc.NewParticipant(res, nil)
		if err != nil {
			return r, err
		}
		if err := tr.Serve("p", rpc.Dedup(part.Handler())); err != nil {
			return r, err
		}
		client := rpc.NewClient(tr, "coord")
		client.Backoff = 0
		client.Retries = 500
		coord, err := rpc.NewCoordinator(client, nil)
		if err != nil {
			return r, err
		}
		committed := 0
		for i := 0; i < txCount; i++ {
			out, err := coord.Commit(fmt.Sprintf("tx-%d", i), []string{"p"})
			if err != nil {
				return r, err
			}
			if out == rpc.OutcomeCommitted {
				committed++
			}
		}
		st := coord.Stats()
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.2f", loss), d(txCount), d(committed), d(res.commits),
			d(st.Prepares), d(st.Commits), d(int(client.Attempts())),
		})
		tr.Close()
	}
	r.Notes = append(r.Notes, "exactly-once: committed effects equal transactions at every loss rate; retries grow with loss")
	return r, nil
}

// countingResource counts committed effects.
type countingResource struct{ commits int }

func (c *countingResource) Prepare(string) (rpc.Vote, error) { return rpc.VoteCommit, nil }
func (c *countingResource) Commit(string) error              { c.commits++; return nil }
func (c *countingResource) Abort(string) error               { return nil }

// E11RecoveryPoints quantifies Sect. 4.3/5.2: recovery points bound the work
// lost in a workstation crash to the interval since the last one, instead of
// rolling a long DOP back to its beginning.
func E11RecoveryPoints() (Report, error) {
	r := Report{ID: "E11", Title: "lost work after workstation crash vs. recovery-point interval"}
	r.Header = []string{"RP interval (work units)", "units done at crash", "units recovered", "units lost"}
	// 23 units: the crash lands mid-interval so the tail work is lost.
	const unitsDone = 23
	for _, interval := range []int{1, 2, 5, 10, unitsDone + 1} {
		dir, err := os.MkdirTemp("", "concord-e11")
		if err != nil {
			return r, err
		}
		sys, err := core.NewSystem(core.Options{Dir: dir, RegisterTypes: vlsi.RegisterCatalog})
		if err != nil {
			os.RemoveAll(dir)
			return r, err
		}
		if err := sys.CM().InitDesign(coop.Config{ID: "da1", DOT: vlsi.DOTFloorplan, Designer: "a"}); err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		if err := sys.CM().Start("da1"); err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		ws, err := sys.AddWorkstation("ws1")
		if err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		dop, err := ws.Begin("long-dop", "da1")
		if err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		obj := catalog.NewObject(vlsi.DOTFloorplan).Set("cell", catalog.Str("O")).Set("area", catalog.Float(1))
		if err := dop.SetWorkspace(obj); err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		// Long tool run: each unit advances the workspace; every
		// interval-th unit takes a recovery point (Save).
		for u := 1; u <= unitsDone; u++ {
			dop.Workspace().Set("step", catalog.Int(int64(u)))
			if u%interval == 0 {
				if err := dop.Save(fmt.Sprintf("rp-%d", u)); err != nil {
					sys.Close()
					os.RemoveAll(dir)
					return r, err
				}
			}
		}
		if err := sys.CrashWorkstation("ws1"); err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		ws2, err := sys.AddWorkstation("ws1")
		if err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return r, err
		}
		recoveredUnits := 0
		if rec := ws2.RecoveredDOPs(); len(rec) == 1 && rec[0].Workspace() != nil {
			recoveredUnits = int(catalog.NumAttr(rec[0].Workspace(), "step"))
			if recoveredUnits < 0 || recoveredUnits > unitsDone {
				recoveredUnits = 0
			}
		}
		label := d(interval)
		if interval > unitsDone {
			label = "none (whole-DOP rollback)"
		}
		r.Rows = append(r.Rows, []string{label, d(unitsDone), d(recoveredUnits), d(unitsDone - recoveredUnits)})
		sys.Close()
		os.RemoveAll(dir)
	}
	r.Notes = append(r.Notes, "lost work equals the interval since the last recovery point; without recovery points the whole DOP is lost")
	return r, nil
}

// All runs every experiment in order.
func All() ([]Report, error) {
	runs := []func() (Report, error){
		E1LevelStack, E2DesignPlane, E3ChipPlanning, E4DAHierarchy,
		E5Delegation, E6Scripts, E7StateGraph, E8FailureMatrix,
		E9Cooperation, E10CommitProtocols, E11RecoveryPoints,
		E12MultiWorkstation, E13Restart, E14CacheDelta,
	}
	out := make([]Report, 0, len(runs))
	for _, run := range runs {
		rep, err := run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", rep.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

var _ = version.StatusWorking // doc-reference
