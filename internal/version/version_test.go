package version

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"concord/internal/catalog"
)

func dov(id string, da string, parents ...ID) *DOV {
	return &DOV{
		ID:      ID(id),
		DOT:     "chip",
		DA:      da,
		Parents: parents,
		Object:  catalog.NewObject("chip"),
		Status:  StatusWorking,
	}
}

func TestInsertAndGet(t *testing.T) {
	g := NewGraph("da1")
	v0 := dov("v0", "da1")
	if err := g.Insert(v0); err != nil {
		t.Fatal(err)
	}
	v1 := dov("v1", "da1", "v0")
	if err := g.Insert(v1); err != nil {
		t.Fatal(err)
	}
	got, err := g.Get("v1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Parents[0] != "v0" {
		t.Fatalf("parents = %v", got.Parents)
	}
	if !g.Contains("v0") || g.Contains("ghost") {
		t.Error("Contains wrong")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestInsertRejections(t *testing.T) {
	g := NewGraph("da1")
	if err := g.Insert(nil); err == nil {
		t.Error("nil DOV accepted")
	}
	if err := g.Insert(dov("x", "other-da")); !errors.Is(err, ErrWrongDA) {
		t.Errorf("wrong DA = %v", err)
	}
	if err := g.Insert(dov("v0", "da1")); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(dov("v0", "da1")); !errors.Is(err, ErrDuplicateDOV) {
		t.Errorf("duplicate = %v", err)
	}
	if err := g.Insert(dov("v1", "da1", "ghost")); !errors.Is(err, ErrUnknownDOV) {
		t.Errorf("unknown parent = %v", err)
	}
	if err := g.Insert(dov("v2", "da1", "v2")); !errors.Is(err, ErrCycle) {
		t.Errorf("self-derivation = %v", err)
	}
}

func TestAdoptRootWithForeignParents(t *testing.T) {
	g := NewGraph("da2")
	// DOV0 handed down from the super-DA: parents point into a foreign graph.
	v := dov("inherited", "da1", "foreign-parent")
	if err := g.AdoptRoot(v); err != nil {
		t.Fatal(err)
	}
	if !g.Contains("inherited") {
		t.Error("adopted root missing")
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != "inherited" {
		t.Fatalf("Roots = %v", roots)
	}
	if err := g.AdoptRoot(v); !errors.Is(err, ErrDuplicateDOV) {
		t.Errorf("duplicate adopt = %v", err)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := NewGraph("da1")
	//     v0
	//    /  \
	//   v1   v2
	//    \  /
	//     v3
	for _, v := range []*DOV{
		dov("v0", "da1"),
		dov("v1", "da1", "v0"),
		dov("v2", "da1", "v0"),
		dov("v3", "da1", "v1", "v2"),
	} {
		if err := g.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	anc, err := g.Ancestors("v3")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Fatalf("Ancestors(v3) = %v", anc)
	}
	desc, err := g.Descendants("v0")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Fatalf("Descendants(v0) = %v", desc)
	}
	ok, err := g.IsAncestor("v0", "v3")
	if err != nil || !ok {
		t.Fatalf("IsAncestor(v0, v3) = %t, %v", ok, err)
	}
	ok, err = g.IsAncestor("v3", "v0")
	if err != nil || ok {
		t.Fatalf("IsAncestor(v3, v0) = %t, %v", ok, err)
	}
	if _, err := g.Ancestors("ghost"); !errors.Is(err, ErrUnknownDOV) {
		t.Errorf("Ancestors(ghost) = %v", err)
	}
	if _, err := g.Descendants("ghost"); !errors.Is(err, ErrUnknownDOV) {
		t.Errorf("Descendants(ghost) = %v", err)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := NewGraph("da1")
	for _, v := range []*DOV{
		dov("a", "da1"),
		dov("b", "da1", "a"),
		dov("c", "da1", "a"),
	} {
		if err := g.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != "a" {
		t.Fatalf("Roots = %v", roots)
	}
	leaves := g.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("Leaves = %v", leaves)
	}
}

func TestStatusLifecycle(t *testing.T) {
	g := NewGraph("da1")
	if err := g.Insert(dov("v0", "da1")); err != nil {
		t.Fatal(err)
	}
	// Status updates go through Replace: a fresh immutable record supersedes
	// the stored one (the repository's MVCC write path).
	v0, err := g.Get("v0")
	if err != nil {
		t.Fatal(err)
	}
	final := *v0
	final.Status = StatusFinal
	if err := g.Replace(&final); err != nil {
		t.Fatal(err)
	}
	finals := g.FinalDOVs()
	if len(finals) != 1 || finals[0].ID != "v0" {
		t.Fatalf("FinalDOVs = %v", finals)
	}
	if v0.Status != StatusWorking {
		t.Fatal("Replace mutated the superseded record")
	}
	ghost := dov("ghost", "da1")
	ghost.Status = StatusFinal
	if err := g.Replace(ghost); !errors.Is(err, ErrUnknownDOV) {
		t.Errorf("Replace(ghost) = %v", err)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusWorking:    "working",
		StatusPropagated: "propagated",
		StatusFinal:      "final",
		StatusInvalid:    "invalid",
		Status(99):       "status(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := dov("v0", "da1")
	v.Object.Set("area", catalog.Float(10))
	v.Fulfilled = []string{"f1"}
	c := v.Clone()
	c.Object.Set("area", catalog.Float(99))
	c.Fulfilled[0] = "changed"
	c.Parents = append(c.Parents, "x")
	if catalog.NumAttr(v.Object, "area") != 10 {
		t.Error("clone shares payload")
	}
	if v.Fulfilled[0] != "f1" {
		t.Error("clone shares fulfilled slice")
	}
	if len(v.Parents) != 0 {
		t.Error("clone shares parents slice")
	}
	var nilDOV *DOV
	if nilDOV.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestIDsInsertionOrder(t *testing.T) {
	g := NewGraph("da1")
	want := []ID{"a", "b", "c"}
	for i, id := range want {
		v := dov(string(id), "da1")
		if i > 0 {
			v.Parents = []ID{want[i-1]}
		}
		if err := g.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	got := g.IDs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

// Property: graphs built by always deriving from existing versions are
// acyclic, and every non-root's ancestors include a root.
func TestQuickDerivationInvariants(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 2
		g := NewGraph("da")
		if err := g.Insert(dov("v0", "da")); err != nil {
			return false
		}
		ids := []ID{"v0"}
		for i := 1; i < count; i++ {
			id := ID(fmt.Sprintf("v%d", i))
			// Pick 1-2 random existing parents.
			p1 := ids[rng.Intn(len(ids))]
			parents := []ID{p1}
			if rng.Intn(2) == 0 {
				p2 := ids[rng.Intn(len(ids))]
				if p2 != p1 {
					parents = append(parents, p2)
				}
			}
			if err := g.Insert(dov(string(id), "da", parents...)); err != nil {
				return false
			}
			ids = append(ids, id)
		}
		if !g.Acyclic() {
			return false
		}
		// Every version except v0 must have v0 as ancestor (single root).
		for _, id := range ids[1:] {
			ok, err := g.IsAncestor("v0", id)
			if err != nil || !ok {
				return false
			}
		}
		// Ancestor/descendant are converse relations.
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		isAnc, err := g.IsAncestor(a, b)
		if err != nil {
			return false
		}
		desc, err := g.Descendants(a)
		if err != nil {
			return false
		}
		inDesc := false
		for _, d := range desc {
			if d == b {
				inDesc = true
			}
		}
		return isAnc == inDesc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
