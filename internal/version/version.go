// Package version implements CONCORD's design object versions (DOVs) and
// the per-design-activity derivation graphs that organize them — the core
// model of the design object management (DOM) layer, beneath design flow
// management (DFM) and the cooperation layer.
//
// Every DOV created within a design activity (DA) belongs to that DA's
// derivation graph — a DAG whose edges record which versions a design
// operation (DOP) read in order to derive a new one (Sect. 2, 4.1). Version
// statuses track the cooperation lifecycle: working versions are private,
// propagated versions are pre-released along usage relationships, final
// versions fulfil the whole design specification, and invalid versions have
// been disqualified after a specification change.
package version

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"concord/internal/catalog"
)

// ID uniquely identifies a design object version repository-wide.
type ID string

// Status is the cooperation lifecycle state of a DOV.
type Status uint8

// DOV statuses.
const (
	// StatusWorking marks a preliminary version private to its DA.
	StatusWorking Status = iota + 1
	// StatusPropagated marks a version pre-released along usage
	// relationships via the Propagate operation.
	StatusPropagated
	// StatusFinal marks a version fulfilling the DA's whole specification.
	StatusFinal
	// StatusInvalid marks a version disqualified by a later specification
	// change or withdrawal.
	StatusInvalid
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusWorking:
		return "working"
	case StatusPropagated:
		return "propagated"
	case StatusFinal:
		return "final"
	case StatusInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// DOV is a design object version: one design state in a DA's derivation
// graph.
type DOV struct {
	// ID is the repository-wide identifier.
	ID ID
	// DOT names the design object type of the payload.
	DOT string
	// DA identifies the design activity whose derivation graph owns the
	// version.
	DA string
	// Parents are the versions checked out to derive this one.
	Parents []ID
	// Object is the design data payload.
	Object *catalog.Object
	// Status is the cooperation lifecycle state.
	Status Status
	// Fulfilled caches the names of specification features the version
	// satisfied at its last Evaluate.
	Fulfilled []string
	// Seq is the creation sequence number within the repository (for
	// deterministic ordering).
	Seq uint64
}

// Clone returns a deep copy (payload included) of the version.
func (v *DOV) Clone() *DOV {
	if v == nil {
		return nil
	}
	c := *v
	c.Parents = append([]ID(nil), v.Parents...)
	c.Fulfilled = append([]string(nil), v.Fulfilled...)
	c.Object = v.Object.Clone()
	return &c
}

// Errors reported by graph operations.
var (
	ErrUnknownDOV   = errors.New("version: unknown DOV")
	ErrDuplicateDOV = errors.New("version: duplicate DOV")
	ErrCycle        = errors.New("version: derivation would create a cycle")
	ErrWrongDA      = errors.New("version: DOV belongs to a different DA")
)

// Graph is the derivation graph of one design activity. All methods are safe
// for concurrent use.
type Graph struct {
	mu   sync.RWMutex
	da   string
	dovs map[ID]*DOV
	// children indexes derivation edges parent → children.
	children map[ID][]ID
	order    []ID // insertion order
}

// NewGraph returns an empty derivation graph owned by the named DA.
func NewGraph(da string) *Graph {
	return &Graph{
		da:       da,
		dovs:     make(map[ID]*DOV),
		children: make(map[ID][]ID),
	}
}

// DA returns the owning design activity identifier.
func (g *Graph) DA() string { return g.da }

// Insert adds a version to the graph, wiring derivation edges from its
// parents. Parents must already exist in this graph; the version must carry
// the graph's DA. Inserting never creates a cycle because the new node has
// no children yet, but Insert defensively rejects self-derivation.
func (g *Graph) Insert(v *DOV) error {
	if v == nil {
		return errors.New("version: nil DOV")
	}
	if v.DA != g.da {
		return fmt.Errorf("%w: %s owned by %q, graph of %q", ErrWrongDA, v.ID, v.DA, g.da)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.dovs[v.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDOV, v.ID)
	}
	for _, p := range v.Parents {
		if p == v.ID {
			return fmt.Errorf("%w: %s derives from itself", ErrCycle, v.ID)
		}
		if _, ok := g.dovs[p]; !ok {
			return fmt.Errorf("%w: parent %s of %s", ErrUnknownDOV, p, v.ID)
		}
	}
	g.dovs[v.ID] = v
	g.order = append(g.order, v.ID)
	for _, p := range v.Parents {
		g.children[p] = append(g.children[p], v.ID)
	}
	return nil
}

// InsertDerived adds a version wiring derivation edges to those parents
// present in this graph; parents absent from the graph are treated as
// foreign (cross-DA inputs made visible along usage relationships) and
// remain recorded on the DOV only. The caller must have verified that
// foreign parents exist elsewhere in the repository.
func (g *Graph) InsertDerived(v *DOV) error {
	if v == nil {
		return errors.New("version: nil DOV")
	}
	if v.DA != g.da {
		return fmt.Errorf("%w: %s owned by %q, graph of %q", ErrWrongDA, v.ID, v.DA, g.da)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.dovs[v.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDOV, v.ID)
	}
	for _, p := range v.Parents {
		if p == v.ID {
			return fmt.Errorf("%w: %s derives from itself", ErrCycle, v.ID)
		}
	}
	g.dovs[v.ID] = v
	g.order = append(g.order, v.ID)
	for _, p := range v.Parents {
		if _, local := g.dovs[p]; local {
			g.children[p] = append(g.children[p], v.ID)
		}
	}
	return nil
}

// AdoptRoot adds a version that has no parents inside this graph even if it
// lists parents from another DA's graph (the initial DOV0 of a sub-DA, or a
// final DOV inherited on sub-DA termination). Foreign parents are recorded
// on the DOV but not required to exist here.
func (g *Graph) AdoptRoot(v *DOV) error {
	if v == nil {
		return errors.New("version: nil DOV")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.dovs[v.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDOV, v.ID)
	}
	g.dovs[v.ID] = v
	g.order = append(g.order, v.ID)
	return nil
}

// Get returns the version with the given ID.
func (g *Graph) Get(id ID) (*DOV, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.dovs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDOV, id)
	}
	return v, nil
}

// Contains reports whether the graph holds the version.
func (g *Graph) Contains(id ID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.dovs[id]
	return ok
}

// Len returns the number of versions in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.dovs)
}

// IDs returns all version IDs in insertion order.
func (g *Graph) IDs() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]ID(nil), g.order...)
}

// Children returns the direct derivates of a version.
func (g *Graph) Children(id ID) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]ID(nil), g.children[id]...)
}

// Roots returns versions without parents in this graph, sorted by insertion.
func (g *Graph) Roots() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []ID
	for _, id := range g.order {
		v := g.dovs[id]
		in := false
		for _, p := range v.Parents {
			if _, ok := g.dovs[p]; ok {
				in = true
				break
			}
		}
		if !in {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns versions without children, sorted by insertion.
func (g *Graph) Leaves() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []ID
	for _, id := range g.order {
		if len(g.children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Ancestors returns the transitive parents of a version within this graph
// (excluding the version itself), sorted by ID for determinism.
func (g *Graph) Ancestors(id ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	start, ok := g.dovs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDOV, id)
	}
	seen := make(map[ID]bool)
	var visit func(v *DOV)
	visit = func(v *DOV) {
		for _, p := range v.Parents {
			pv, ok := g.dovs[p]
			if !ok || seen[p] {
				continue
			}
			seen[p] = true
			visit(pv)
		}
	}
	visit(start)
	out := make([]ID, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Descendants returns the transitive derivates of a version (excluding the
// version itself), sorted by ID.
func (g *Graph) Descendants(id ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.dovs[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDOV, id)
	}
	seen := make(map[ID]bool)
	var visit func(ID)
	visit = func(x ID) {
		for _, c := range g.children[x] {
			if seen[c] {
				continue
			}
			seen[c] = true
			visit(c)
		}
	}
	visit(id)
	out := make([]ID, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IsAncestor reports whether a is a (transitive) ancestor of b.
func (g *Graph) IsAncestor(a, b ID) (bool, error) {
	anc, err := g.Ancestors(b)
	if err != nil {
		return false, err
	}
	for _, x := range anc {
		if x == a {
			return true, nil
		}
	}
	return false, nil
}

// Acyclic verifies the graph invariant: derivation edges form a DAG. It is
// used by property tests and the repository's consistency checker.
func (g *Graph) Acyclic() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ID]int, len(g.dovs))
	var dfs func(ID) bool
	dfs = func(id ID) bool {
		color[id] = gray
		for _, c := range g.children[id] {
			switch color[c] {
			case gray:
				return false
			case white:
				if !dfs(c) {
					return false
				}
			}
		}
		color[id] = black
		return true
	}
	for id := range g.dovs {
		if color[id] == white {
			if !dfs(id) {
				return false
			}
		}
	}
	return true
}

// FinalDOVs returns the versions currently marked final, in insertion order.
func (g *Graph) FinalDOVs() []*DOV {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*DOV
	for _, id := range g.order {
		if g.dovs[id].Status == StatusFinal {
			out = append(out, g.dovs[id])
		}
	}
	return out
}

// Replace swaps the stored record of an existing version for an updated
// immutable copy carrying the same ID (the repository's MVCC write path
// republishes status and quality updates this way; published DOVs are never
// mutated in place). Derivation edges are untouched — a replacement must
// not change ID or Parents.
func (g *Graph) Replace(v *DOV) error {
	if v == nil {
		return errors.New("version: nil DOV")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.dovs[v.ID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDOV, v.ID)
	}
	g.dovs[v.ID] = v
	return nil
}
