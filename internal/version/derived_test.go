package version

import (
	"errors"
	"testing"
)

func TestInsertDerivedForeignParents(t *testing.T) {
	g := NewGraph("da2")
	// A version derived from a foreign DOV (usage input from another DA's
	// graph) plus a local parent.
	local := dov("local", "da2")
	if err := g.Insert(local); err != nil {
		t.Fatal(err)
	}
	v := dov("mix", "da2", "foreign-dov", "local")
	if err := g.InsertDerived(v); err != nil {
		t.Fatal(err)
	}
	// The local edge exists; the foreign edge is recorded on the DOV only.
	kids := g.Children("local")
	if len(kids) != 1 || kids[0] != "mix" {
		t.Fatalf("children of local = %v", kids)
	}
	if len(g.Children("foreign-dov")) != 0 {
		t.Fatal("foreign parent got a local edge")
	}
	got, err := g.Get("mix")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parents) != 2 {
		t.Fatalf("parents = %v", got.Parents)
	}
	if !g.Acyclic() {
		t.Fatal("graph not acyclic")
	}
}

func TestInsertDerivedRejections(t *testing.T) {
	g := NewGraph("da1")
	if err := g.InsertDerived(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := g.InsertDerived(dov("x", "other")); !errors.Is(err, ErrWrongDA) {
		t.Errorf("wrong DA = %v", err)
	}
	if err := g.InsertDerived(dov("self", "da1", "self")); !errors.Is(err, ErrCycle) {
		t.Errorf("self-derivation = %v", err)
	}
	if err := g.InsertDerived(dov("a", "da1")); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertDerived(dov("a", "da1")); !errors.Is(err, ErrDuplicateDOV) {
		t.Errorf("duplicate = %v", err)
	}
}
