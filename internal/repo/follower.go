package repo

// Warm-standby follower mode (DESIGN.md §5.4). A follower repository is the
// standby half of WAL shipping: the primary's group-commit batches arrive as
// raw frames (wal.Shipper → internal/repl → ApplyShipped here), land in the
// follower's own log at identical LSNs, and are applied record by record to
// the live MVCC index, DA graphs and metadata store — the same switch the
// restart replay runs, but against published state, so the standby stays
// within one shipped batch of the primary and promotion is O(tail), not
// O(history). The replication epoch (promotion term) is persisted in the
// snapshot manifest as a kind-3 entry; BumpEpoch is the durable half of a
// promotion's fencing, Promote the in-memory half.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"concord/internal/version"
	"concord/internal/wal"
)

// Follower reports whether the repository is in warm-standby follower mode.
func (r *Repository) Follower() bool { return r.follower.Load() }

// Epoch reports the replication epoch (promotion term) the repository last
// persisted. Lock-free.
func (r *Repository) Epoch() uint64 { return r.epoch.Load() }

// Promote ends follower mode: direct mutations are accepted from here on.
// Callers bump the epoch durably first (BumpEpoch) so a deposed primary's
// shipped batches are fenced before the first new write lands. Idempotent.
func (r *Repository) Promote() {
	r.follower.Store(false)
}

// BumpEpoch durably raises the replication epoch to e, persisting it as a
// manifest entry before the in-memory value moves — after it returns, no
// crash can resurrect a lower term. Raising to the current value is a no-op;
// lowering is refused. Volatile repositories keep the epoch in memory only.
func (r *Repository) BumpEpoch(e uint64) error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	cur := r.epoch.Load()
	if e == cur {
		return nil
	}
	if e < cur {
		return fmt.Errorf("repo: epoch may not move backwards (%d -> %d)", cur, e)
	}
	if r.dir != "" {
		if err := r.persistEpoch(e); err != nil {
			return err
		}
	}
	r.epoch.Store(e)
	return nil
}

// persistEpoch writes the epoch manifest entry: appended as one fsynced
// frame when a manifest exists, otherwise installed as a fresh manifest via
// the atomic rebase path. Caller holds ckptMu (the manifest writer lock).
func (r *Repository) persistEpoch(e uint64) error {
	entry := epochEntry(e)
	if _, err := os.Stat(filepath.Join(r.dir, manifestName)); err == nil {
		return r.appendManifest(entry)
	}
	return r.rebaseManifest([]manifestEntry{entry})
}

// ApplyShipped ingests one shipped batch: the frames are appended to the
// follower's log at exactly LSN start (AppendRaw refuses gaps, which is how
// a missed batch is detected and catch-up triggered), then each record is
// applied to the live state under the exclusive quiesce lock. An apply
// failure after the durable append latches fail-stop — the log and memory
// would otherwise diverge — but cannot lose committed work: a restart
// replays the appended records through the normal recovery path.
func (r *Repository) ApplyShipped(start wal.LSN, frames []byte) error {
	if r.log == nil {
		return errors.New("repo: volatile repository cannot ingest shipped batches")
	}
	if !r.follower.Load() {
		return fmt.Errorf("%w: not a follower", ErrValidation)
	}
	if err := r.writable(); err != nil {
		return err
	}
	if err := r.log.AppendRaw(start, frames); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _, err := wal.ForEachFrame(start, frames, r.applyFollowerRecord)
	if err != nil {
		ferr := fmt.Errorf("%w: follower apply: %v", ErrFatal, err)
		r.fatal.CompareAndSwap(nil, &ferr)
	}
	return err
}

// ReplTail reports the follower log's append position: the LSN the next
// shipped batch must start at.
func (r *Repository) ReplTail() wal.LSN {
	if r.log == nil {
		return 0
	}
	return wal.LSN(r.log.Size())
}

// applyFollowerRecord applies one shipped record to the live state. Caller
// holds the quiesce lock exclusively, so no in-flight mutator exists; the
// published structures (COW index shards, DA directory, graphs) are still
// updated through their normal publication paths because lock-free readers
// observe them without the quiesce lock.
func (r *Repository) applyFollowerRecord(rec wal.Record) error {
	switch rec.Type {
	case recGraphNew:
		da := string(rec.Payload)
		r.dasMu.Lock()
		if _, ok := r.das[da]; !ok {
			r.das[da] = &daState{g: version.NewGraph(da)}
			r.publishDAs()
		}
		r.dasMu.Unlock()
	case recDOVInsert:
		d, err := decodeInsert(rec.Payload)
		if err != nil {
			return err
		}
		return r.installShippedInsert(d)
	case recDOVStatus:
		return r.applyShippedStatus(rec.Payload)
	case recMetaPut:
		key, value, ok := splitMetaPayload(rec.Payload)
		if !ok {
			return errors.New("repo: shipped meta record: bad payload")
		}
		r.metaMu.Lock()
		r.meta[key] = append([]byte(nil), value...)
		r.metaGen++
		r.metaMu.Unlock()
	case recMetaDel:
		r.metaMu.Lock()
		if _, ok := r.meta[string(rec.Payload)]; ok {
			delete(r.meta, string(rec.Payload))
			r.metaGen++
		}
		r.metaMu.Unlock()
	}
	return nil
}

// installShippedInsert publishes one shipped DOV exactly as the primary's
// checkin did: claim, graph insert, index publication.
func (r *Repository) installShippedInsert(d *decodedInsert) error {
	dr := d.rec
	v := &version.DOV{
		ID: dr.ID, DOT: dr.DOT, DA: dr.DA, Parents: dr.Parents,
		Object: d.obj, Status: dr.Status, Fulfilled: dr.Fulfilled, Seq: dr.Seq,
	}
	r.dasMu.Lock()
	st, ok := r.das[dr.DA]
	if !ok {
		st = &daState{g: version.NewGraph(dr.DA)}
		r.das[dr.DA] = st
		r.publishDAs()
	}
	r.dasMu.Unlock()
	if !r.idx.claim(v.ID) {
		return fmt.Errorf("%w: shipped %s", version.ErrDuplicateDOV, v.ID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if dr.Root {
		if err := st.g.AdoptRoot(v); err != nil {
			r.idx.unclaim(v.ID)
			return err
		}
	} else if err := st.g.InsertDerived(v); err != nil {
		r.idx.unclaim(v.ID)
		return err
	}
	r.idx.put(v.ID, &dovEntry{dov: v, enc: &encMemo{}, root: dr.Root})
	if dr.Seq > r.seq.Load() {
		r.seq.Store(dr.Seq)
	}
	return nil
}

// applyShippedStatus applies a shipped status record through the normal
// republication path (fresh immutable record, graph swap).
func (r *Repository) applyShippedStatus(payload []byte) error {
	id, rest, ok := splitMetaPayload(payload)
	if !ok || len(rest) != 1 {
		return errors.New("repo: shipped status record: bad payload")
	}
	e, found := r.idx.get(version.ID(id))
	if !found {
		return fmt.Errorf("repo: shipped status for unknown DOV %s", id)
	}
	st, found := (*r.dasPub.Load())[e.dov.DA]
	if !found {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, e.dov.DA)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e, _ = r.idx.get(version.ID(id))
	nv := *e.dov
	nv.Status = version.Status(rest[0])
	return r.republish(st, &nv, e)
}

// splitMetaPayload splits a NUL-separated payload into its key and value.
func splitMetaPayload(p []byte) (string, []byte, bool) {
	for i, b := range p {
		if b == 0 {
			return string(p[:i]), p[i+1:], true
		}
	}
	return "", nil, false
}
