// Package repo implements the CONCORD design-data repository: the
// "advanced DBMS (object and version management)" at the bottom of Fig. 1.
//
// The repository stores design object versions (DOVs) organized into
// per-design-activity derivation graphs, validates every checked-in version
// against its design object type (schema consistency, Sect. 5.2), and makes
// all state durable through a write-ahead redo log so that a server crash
// loses no committed version. It also offers a small durable key/value
// metadata store used by the cooperation manager (DA hierarchy state,
// cooperation protocol log) and the design managers (persistent scripts and
// script logs), mirroring the paper's decision to keep all level-specific
// context data in the server DBMS.
package repo

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/version"
	"concord/internal/wal"
)

// WAL record types used by the repository.
const (
	recDOVInsert wal.RecordType = iota + 1
	recDOVStatus
	recMetaPut
	recMetaDel
	recGraphNew
)

// Errors reported by the repository.
var (
	ErrUnknownGraph = errors.New("repo: unknown derivation graph")
	ErrUnknownMeta  = errors.New("repo: unknown metadata key")
	ErrValidation   = errors.New("repo: schema validation failed")
	// ErrFatal reports that a forced log write failed after its mutation
	// was applied in memory: the volatile state may be ahead of the log,
	// so the repository fail-stops rather than serve phantom data. A
	// restart recovers the durable prefix.
	ErrFatal = errors.New("repo: durability failure, repository is fail-stop")
	// ErrDegraded reports that the log stopped accepting writes (e.g. a
	// full disk) and the repository latched read-only degraded mode
	// (Options.DegradedOnWALFailure): reads keep serving from the MVCC
	// index, every mutation is refused with this sentinel. A restart with
	// the disk healthy recovers the durable prefix and clears the mode.
	ErrDegraded = errors.New("repo: degraded (read-only), log not accepting writes")
	// ErrFollower reports a mutation refused because the repository is a
	// warm-standby replication follower (Options.Follower): its state
	// changes arrive exclusively through ApplyShipped until Promote ends
	// follower mode. Reads serve normally from the hot MVCC index.
	ErrFollower = errors.New("repo: follower (standby replica, mutations arrive via replication)")
)

// Options configures a Repository.
type Options struct {
	// Dir is the durable storage directory; empty means volatile
	// (in-memory only, no crash recovery).
	Dir string
	// Sync forces the log to stable storage on every append.
	Sync bool
	// NoGroupCommit disables WAL append batching (one write+fsync per
	// record). Ablation baseline for experiments; see wal.Options.
	NoGroupCommit bool
	// SegmentBytes is the WAL segment rotation threshold (0 uses
	// wal.DefaultSegmentBytes). Checkpointing deletes whole sealed
	// segments, so smaller segments compact at a finer grain.
	SegmentBytes int64
	// Faults, when non-nil, is the named fault-point registry traversed at
	// the steps of the checkpoint protocol (the repo Crash* constants plus
	// the wal.Crash* constants). An armed point aborts the operation
	// there, simulating a crash. Tests only; see CrashPoints.
	Faults *fault.Registry
	// SerializedReads reverts the read path to the pre-MVCC design: Get
	// takes the repository lock and deep-clones the payload, Exists and
	// EncodedObject read under the lock. Ablation baseline for E15; never
	// set in production.
	SerializedReads bool
	// SerializedWrites reverts the mutation path to the fully serial
	// pre-concurrency design: every mutation holds one global repository
	// lock across its forced log write, so checkins serialize repository-
	// wide — one record, one fsync, one writer at a time — instead of
	// running concurrently per design area with group-committed log
	// appends (DESIGN.md §3.7). Ablation baseline for E16; never set in
	// production.
	SerializedWrites bool
	// SerialReplay reverts restart to record-at-a-time replay (unbuffered
	// reads, decode and apply interleaved in one loop) instead of the
	// pipelined replay that streams segments through a large buffer and
	// decodes DOV payloads on a worker pool (DESIGN.md §3.7). Ablation
	// baseline for E16 restart numbers; never set in production.
	SerialReplay bool
	// ReplayWorkers is the decode worker count of the pipelined replay
	// (0 = GOMAXPROCS, capped at 8). Ignored with SerialReplay.
	ReplayWorkers int
	// QuiescentCheckpoint reverts Checkpoint to the pre-chain design: the
	// whole state is encoded while the quiesce lock is held exclusively (a
	// stop-the-world pause growing with live state) and every checkpoint is
	// a full snapshot. Ablation baseline for E19; never set in production.
	QuiescentCheckpoint bool
	// CheckpointMaxChain bounds the snapshot chain length: once a full
	// snapshot has this many incremental deltas stacked on it, the next
	// checkpoint rebases (writes a fresh full snapshot). 0 uses
	// DefaultCheckpointMaxChain.
	CheckpointMaxChain int
	// CheckpointMaxChainBytes bounds the chain's total payload bytes before
	// a rebase is forced. 0 uses DefaultCheckpointMaxChainBytes.
	CheckpointMaxChainBytes int64
	// DegradedOnWALFailure turns a durability failure (failed WAL
	// append/fsync, e.g. disk full) into read-only degraded mode instead
	// of a repository-wide fail-stop: reads keep serving from the MVCC
	// index while mutations are refused with ErrDegraded. The tradeoff is
	// visibility of the narrow in-flight window — mutations whose log
	// record was refused at the moment of failure were never published,
	// but an already-published mutation whose batch fsync failed may be
	// readable yet not durable until restart rolls the log back to its
	// durable prefix. See DESIGN.md §5.3.
	DegradedOnWALFailure bool
	// Follower opens the repository as a warm-standby replication
	// follower (DESIGN.md §5.4): direct mutations are refused with
	// ErrFollower and state changes arrive exclusively through
	// ApplyShipped, which appends the primary's shipped WAL frames and
	// applies them to the live MVCC index so promotion finds the state
	// hot. Promote ends follower mode.
	Follower bool
}

// Repository is the design data repository. All methods are safe for
// concurrent use.
//
// Reads are multi-versioned (DESIGN.md §3.6): Get, Exists, EncodedObject and
// Graph never take the repository lock and never copy payloads — they return
// immutable records published through the copy-on-write index in mvcc.go.
// Callers must treat every returned DOV (and its Object) as read-only.
//
// Writes are sharded by design area (DESIGN.md §3.7): a checkin holds the
// repository-wide quiesce lock shared plus its DA's write lock, so checkins
// to distinct DAs proceed concurrently and serialize only inside one
// derivation graph. The snapshot encoder is the only exclusive holder of the
// quiesce lock, which is what keeps the §3.5 (snapshot state == effect of
// all records below the noted LSN) invariant intact without a global writer
// mutex.
type Repository struct {
	cat *catalog.Catalog
	dir string
	// faults is the crash-point fault-injection registry (tests only).
	faults *fault.Registry
	// serializedReads selects the pre-MVCC locked+cloning read path
	// (Options.SerializedReads; E15 ablation baseline).
	serializedReads bool
	// serializedWrites selects the global-lock-across-fsync write path
	// (Options.SerializedWrites; E16 ablation baseline).
	serializedWrites bool
	// globalWriteLock makes every mutator take mu exclusively instead of
	// shared — set by either Serialized* ablation so the historical
	// reader/writer mutual exclusion those baselines measure is preserved.
	globalWriteLock bool
	// serialReplay / replayWorkers configure restart replay (§3.7).
	serialReplay  bool
	replayWorkers int

	// mu is the quiesce lock. Mutators hold it SHARED for the span
	// [WAL reservation, in-memory publication]; the snapshot encoder (and
	// state-wide diagnostics) hold it EXCLUSIVE, which blocks out every
	// in-flight mutation and makes (state, log.Size()) a consistent pair
	// (§3.5). Actual mutual exclusion between writers is per resource:
	// daState.mu for a DA's graph + version inserts, idx shard mutexes for
	// index publication, metaMu for the metadata store.
	mu sync.RWMutex

	// dasMu serializes DA-state creation; lookups go through dasPub.
	dasMu sync.Mutex
	das   map[string]*daState
	// dasPub is the atomically swapped DA directory for lock-free lookups
	// (DAs are created rarely; each creation copies the map and swaps the
	// pointer).
	dasPub atomic.Pointer[map[string]*daState]

	// metaMu guards the metadata store (cold path: manager context data)
	// and its dirty generation.
	metaMu sync.Mutex
	meta   map[string][]byte
	// metaGen counts durable metadata mutations — the incremental
	// checkpointer's dirty mark for the store (§3.8). Guarded by metaMu.
	metaGen uint64

	// seq is the repository-wide version sequence counter.
	seq atomic.Uint64
	log *wal.Log

	// idx is the sharded read index and writer-side version directory
	// (mvcc.go). Readers only load; writers claim/publish per shard.
	idx dovIndex
	// degradedOnWAL selects read-only degraded mode over fail-stop when a
	// log write fails (Options.DegradedOnWALFailure).
	degradedOnWAL bool
	// degraded is latched instead of fatal when degradedOnWAL is set: the
	// read path stays open, the mutation path is refused with ErrDegraded.
	degraded atomic.Pointer[error]
	// follower marks warm-standby mode (Options.Follower): mutations are
	// refused with ErrFollower and state arrives via ApplyShipped until
	// Promote clears it. Atomic so the hot paths check it lock-free.
	follower atomic.Bool
	// epoch is the replication epoch (promotion term) persisted in the
	// snapshot manifest — the fencing token of DESIGN.md §5.4. Writes go
	// through BumpEpoch (under ckptMu, durably); reads are lock-free.
	epoch atomic.Uint64
	// fatal is latched when a reserved log record failed to become durable
	// (see appendAsync): the in-memory state is then ahead of the log and
	// every subsequent operation is refused with ErrFatal. Atomic so the
	// lock-free read path can check it without the lock.
	fatal atomic.Pointer[error]

	// ckptMu serializes checkpoints and guards the chain state below:
	// snapLSN (the log position the durable chain covers), the manifest
	// chain itself, its payload byte total, and the generation vector of
	// the last committed cut (nil forces the next checkpoint to be a full
	// rebase — always the case right after Open, since dirty marks are
	// volatile).
	ckptMu     sync.Mutex
	snapLSN    wal.LSN
	chain      []manifestEntry
	chainBytes int64
	lastGens   *ckptGens
	// Checkpoint policy (from Options; fixed after Open).
	quiescentCkpt bool
	maxChain      int
	maxChainBytes int64
	// lastPauseNs/maxPauseNs instrument the exclusive-lock window of the
	// snapshot cut — the writer stall E19 bounds.
	lastPauseNs atomic.Int64
	maxPauseNs  atomic.Int64

	// onChange, when set, is invoked after every durable version mutation
	// (see SetChangeHook).
	changeMu sync.RWMutex
	onChange func(ChangeEvent)
}

// daState is the writer-side record of one design area: its derivation graph
// plus the write lock serializing mutations of that graph. Checkins to
// different DAs take different locks, which is the §3.7 sharding.
type daState struct {
	mu sync.Mutex
	g  *version.Graph
}

// ChangeKind distinguishes version-change events pushed to the hook.
type ChangeKind uint8

// Version-change kinds.
const (
	// ChangeCheckin reports a newly installed DOV; Parents carries the
	// versions it supersedes as "latest in its line".
	ChangeCheckin ChangeKind = iota + 1
	// ChangeStatus reports a lifecycle-status update (promotion,
	// invalidation) of an existing DOV.
	ChangeStatus
)

// ChangeEvent describes one durable version mutation.
type ChangeEvent struct {
	// Kind says what happened.
	Kind ChangeKind
	// ID is the affected (new or updated) version.
	ID version.ID
	// DA owns the version's derivation graph.
	DA string
	// Parents are the superseded versions (ChangeCheckin only).
	Parents []version.ID
	// Status is the new lifecycle status.
	Status version.Status
}

// SetChangeHook registers fn to run after every durable version mutation
// (checkin, status update), outside all repository locks and after the
// mutation's log record is durable. The server-TM uses it to push workstation
// cache invalidations (DESIGN.md §4). One hook; nil unregisters.
func (r *Repository) SetChangeHook(fn func(ChangeEvent)) {
	r.changeMu.Lock()
	r.onChange = fn
	r.changeMu.Unlock()
}

// fireChange delivers ev to the registered hook, if any.
func (r *Repository) fireChange(ev ChangeEvent) {
	r.changeMu.RLock()
	fn := r.onChange
	r.changeMu.RUnlock()
	if fn != nil {
		fn(ev)
	}
}

// EncodedObject returns the canonical encoding and content hash of a stored
// version's payload. Both are memoized per version on first use (payloads
// are immutable once checked in), so the checkout and delta paths read them
// without locking, cloning or allocating after the first request.
func (r *Repository) EncodedObject(id version.ID) (enc, hash []byte, err error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return nil, nil, err
	}
	e, ok := r.idx.get(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return e.encoded()
}

// Open creates or recovers a repository. When opts.Dir names a directory
// containing prior repository state, recovery loads the last snapshot (if
// any) and replays only the redo-log suffix behind it, so restart work is
// bounded by live state plus the records since the last checkpoint.
func Open(cat *catalog.Catalog, opts Options) (*Repository, error) {
	if cat == nil {
		return nil, errors.New("repo: nil catalog")
	}
	r := &Repository{
		cat:              cat,
		dir:              opts.Dir,
		faults:           opts.Faults,
		serializedReads:  opts.SerializedReads,
		serializedWrites: opts.SerializedWrites,
		globalWriteLock:  opts.SerializedReads || opts.SerializedWrites,
		serialReplay:     opts.SerialReplay,
		replayWorkers:    opts.ReplayWorkers,
		degradedOnWAL:    opts.DegradedOnWALFailure,
		quiescentCkpt:    opts.QuiescentCheckpoint,
		maxChain:         opts.CheckpointMaxChain,
		maxChainBytes:    opts.CheckpointMaxChainBytes,
		das:              make(map[string]*daState),
		meta:             make(map[string][]byte),
	}
	r.follower.Store(opts.Follower)
	if r.maxChain <= 0 {
		r.maxChain = DefaultCheckpointMaxChain
	}
	if r.maxChainBytes <= 0 {
		r.maxChainBytes = DefaultCheckpointMaxChainBytes
	}
	r.idx.init()
	// staging collects recovered versions outside the published index so the
	// bulk rebuild below costs one pass instead of per-record copy-on-write.
	staging := make(map[version.ID]*dovEntry)
	if opts.Dir != "" {
		snapLSN, chain, chainBytes, err := r.loadSnapshotChain(staging)
		if err != nil {
			return nil, err
		}
		r.snapLSN = snapLSN
		r.chain = chain
		r.chainBytes = chainBytes
		l, err := wal.Open(filepath.Join(opts.Dir, "repo.wal"), wal.Options{
			SyncOnAppend:  opts.Sync,
			NoGroupCommit: opts.NoGroupCommit,
			SegmentBytes:  opts.SegmentBytes,
			Faults:        opts.Faults,
			BufferedScan:  !opts.SerialReplay,
		})
		if err != nil {
			return nil, err
		}
		r.log = l
		// A mark beyond the surviving chain coverage means records the chain
		// was supposed to carry are gone from the log — genuine loss (e.g. a
		// deleted manifest). Refuse to open rather than silently serve a
		// truncated history. The checkpoint protocol makes this unreachable:
		// the covering manifest entry is fsync-durable strictly before the
		// mark moves.
		if l.LowWater() > snapLSN {
			l.Close()
			return nil, fmt.Errorf("repo: checkpoint mark %d beyond snapshot chain coverage %d (manifest truncated or missing)",
				l.LowWater(), snapLSN)
		}
		// Complete a checkpoint whose chain entry installed but whose log
		// mark was lost to a crash: the chain's coverage is authoritative and
		// wal.Checkpoint is idempotent and monotonic.
		if snapLSN > l.LowWater() {
			if err := l.Checkpoint(snapLSN); err != nil {
				l.Close()
				return nil, err
			}
		}
		if err := r.recover(snapLSN, staging); err != nil {
			l.Close()
			return nil, err
		}
		// Collect leftovers of crashed checkpoint attempts (unreferenced
		// payload files, stray tmps). The parsed chain matches the durable
		// manifest prefix, so everything outside it is garbage.
		r.gcSnapshots()
	}
	r.idx.rebuild(staging)
	r.publishDAs()
	return r, nil
}

// publishDAs swaps in a fresh copy of the DA directory. Callers hold dasMu
// (or own the repository exclusively, as at Open).
func (r *Repository) publishDAs() {
	m := make(map[string]*daState, len(r.das))
	for da, st := range r.das {
		m[da] = st
	}
	r.dasPub.Store(&m)
}

// Close releases the underlying log.
func (r *Repository) Close() error {
	if r.log != nil {
		return r.log.Close()
	}
	return nil
}

// Catalog returns the repository's DOT catalog.
func (r *Repository) Catalog() *catalog.Catalog { return r.cat }

type dovRecord struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
	Seq       uint64
	Root      bool // adopted root (foreign parents allowed)
}

// encodeInto writes the record in the binenc hot-path format (gob's
// per-record engine compilation showed up in the checkin profile). Checkin
// encodes into a pooled writer; the bytes only need to survive until the WAL
// frames them.
func (d dovRecord) encodeInto(w *binenc.Writer) {
	w.Str(string(d.ID))
	w.Str(d.DOT)
	w.Str(d.DA)
	w.U64(uint64(len(d.Parents)))
	for _, p := range d.Parents {
		w.Str(string(p))
	}
	w.Blob(d.Object)
	w.Byte(byte(d.Status))
	w.Strs(d.Fulfilled)
	w.U64(d.Seq)
	w.Bool(d.Root)
}

// encode is encodeInto with a fresh buffer (snapshot path).
func (d dovRecord) encode() []byte {
	w := binenc.NewWriter(96 + len(d.Object))
	d.encodeInto(w)
	return w.Bytes()
}

func decodeDOVRecord(data []byte) (dovRecord, error) {
	r := binenc.NewReader(data)
	d := dovRecord{ID: version.ID(r.Str()), DOT: r.Str(), DA: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		d.Parents = append(d.Parents, version.ID(r.Str()))
	}
	d.Object = r.Blob()
	d.Status = version.Status(r.Byte())
	d.Fulfilled = r.Strs()
	d.Seq = r.U64()
	d.Root = r.Bool()
	return d, r.Err()
}

// decodedInsert is a recDOVInsert payload after the CPU-heavy half of its
// recovery — record decode plus catalog.DecodeObject — which the pipelined
// replay runs on a worker pool (§3.7).
type decodedInsert struct {
	rec dovRecord
	obj *catalog.Object
}

// decodeInsert performs the worker-side half of recovering one DOV record.
func decodeInsert(data []byte) (*decodedInsert, error) {
	dr, err := decodeDOVRecord(data)
	if err != nil {
		return nil, fmt.Errorf("repo: recover DOV: %w", err)
	}
	obj, err := catalog.DecodeObject(dr.Object)
	if err != nil {
		return nil, err
	}
	return &decodedInsert{rec: dr, obj: obj}, nil
}

// installRecovered inserts one decoded DOV exactly as the original checkin
// did, into the recovery staging map and the (not yet shared) graphs.
func (r *Repository) installRecovered(d *decodedInsert, staging map[version.ID]*dovEntry) error {
	dr := d.rec
	v := &version.DOV{
		ID: dr.ID, DOT: dr.DOT, DA: dr.DA, Parents: dr.Parents,
		Object: d.obj, Status: dr.Status, Fulfilled: dr.Fulfilled, Seq: dr.Seq,
	}
	st, ok := r.das[dr.DA]
	if !ok {
		st = &daState{g: version.NewGraph(dr.DA)}
		r.das[dr.DA] = st
	}
	if dr.Root {
		if err := st.g.AdoptRoot(v); err != nil {
			return err
		}
	} else if err := st.g.InsertDerived(v); err != nil {
		return err
	}
	staging[v.ID] = &dovEntry{dov: v, enc: &encMemo{}, root: dr.Root}
	if dr.Seq > r.seq.Load() {
		r.seq.Store(dr.Seq)
	}
	return nil
}

// applyDOVRecord decodes and installs one durable DOV record (snapshot
// load and serial replay path).
func (r *Repository) applyDOVRecord(data []byte, staging map[version.ID]*dovEntry) error {
	d, err := decodeInsert(data)
	if err != nil {
		return err
	}
	return r.installRecovered(d, staging)
}

// recover replays the redo-log suffix behind the loaded snapshot. Records
// below snapLSN are already reflected in the snapshot state (the WAL's own
// low-water mark normally equals snapLSN, but a crash between snapshot
// install and log mark can leave older records in the log).
//
// By default the replay is pipelined (§3.7): the WAL streams records through
// a large read buffer and a worker pool runs decodeInsert — the dominant
// restart cost — concurrently, while this applier installs records strictly
// in LSN order, so the rebuilt state is identical to serial replay.
func (r *Repository) recover(snapLSN wal.LSN, staging map[version.ID]*dovEntry) error {
	apply := func(rec wal.Record, pre any) error {
		if rec.LSN < snapLSN {
			return nil
		}
		switch rec.Type {
		case recGraphNew:
			da := string(rec.Payload)
			if _, ok := r.das[da]; !ok {
				r.das[da] = &daState{g: version.NewGraph(da)}
			}
		case recDOVInsert:
			if d, ok := pre.(*decodedInsert); ok {
				return r.installRecovered(d, staging)
			}
			return r.applyDOVRecord(rec.Payload, staging)
		case recDOVStatus:
			parts := strings.SplitN(string(rec.Payload), "\x00", 2)
			if len(parts) != 2 || len(parts[1]) != 1 {
				// A short second part means the status byte is missing: a
				// corrupt record must fail recovery, not index past the end.
				return errors.New("repo: recover status: bad payload")
			}
			if e, ok := staging[version.ID(parts[0])]; ok {
				e.dov.Status = version.Status(parts[1][0])
			}
		case recMetaPut:
			parts := bytes.SplitN(rec.Payload, []byte{0}, 2)
			if len(parts) != 2 {
				return errors.New("repo: recover meta: bad payload")
			}
			r.meta[string(parts[0])] = append([]byte(nil), parts[1]...)
		case recMetaDel:
			delete(r.meta, string(rec.Payload))
		}
		return nil
	}
	if r.serialReplay {
		return r.log.Replay(func(rec wal.Record) error { return apply(rec, nil) })
	}
	workers := r.replayWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	decode := func(rec wal.Record) (any, error) {
		if rec.Type != recDOVInsert || rec.LSN < snapLSN {
			return nil, nil
		}
		return decodeInsert(rec.Payload)
	}
	return r.log.ReplayPipelined(workers, decode, apply)
}

// noWait is the wait function of volatile repositories (no log).
func noWait() (wal.LSN, error) { return 0, nil }

// appendAsync reserves a log record and returns its durability wait
// function. Mutators call it while holding the quiesce lock (shared) plus
// the mutated resource's lock — the reservation fixes the record's replay
// position relative to every other mutation of that resource — and invoke
// the wait after releasing their locks, so the fsync happens outside the
// repository locks and concurrent transactions' records group into one
// commit batch.
//
// The in-memory state is applied at reservation time, before durability.
// This never lets a replay dangle: a version is published only after its
// record is reserved, and anything derived from it reserves later (records
// enter the log in reservation order), so the crash-surviving log prefix is
// always self-consistent — see the §3.7 cross-DA argument. The one
// remaining hazard is a failed wait (disk error): the applied state would
// be ahead of the log, so the wait wrapper below turns that into a
// repository-wide fail-stop (ErrFatal) instead of serving phantom data.
func (r *Repository) appendAsync(t wal.RecordType, owner string, payload []byte) (func() (wal.LSN, error), error) {
	if r.log == nil {
		return noWait, nil
	}
	wait, err := r.log.AppendAsync(t, owner, payload)
	if err != nil {
		return nil, err
	}
	return func() (wal.LSN, error) {
		lsn, err := wait()
		if err != nil {
			r.failStop(err)
			// Surface the latched sentinel (ErrDegraded / ErrFatal) so the
			// failing mutation itself unwraps like every later one — over
			// the wire it maps to the registered code.
			if lerr := r.writable(); lerr != nil {
				err = lerr
			}
		}
		return lsn, err
	}, nil
}

// failStop latches the durability-failure state: read-only degraded mode
// when DegradedOnWALFailure is set, repository-wide fail-stop otherwise.
// The latch is a lock-free CAS so it is safe from any path, including waits
// running inside the SerializedWrites critical section.
func (r *Repository) failStop(cause error) {
	// Both the mode sentinel and the cause stay matchable: a deposed
	// primary's latched error answers errors.Is for rpc.ErrStaleEpoch too.
	if r.degradedOnWAL {
		err := fmt.Errorf("%w: %w", ErrDegraded, cause)
		r.degraded.CompareAndSwap(nil, &err)
		return
	}
	err := fmt.Errorf("%w: %w", ErrFatal, cause)
	r.fatal.CompareAndSwap(nil, &err)
}

// alive returns the latched fatal error, if any. Degraded mode does NOT
// trip it: reads stay open. Lock-free; safe from any path.
func (r *Repository) alive() error {
	if p := r.fatal.Load(); p != nil {
		return *p
	}
	return nil
}

// writable returns the latched fatal or degraded error, if any — the
// mutation-path liveness check. Lock-free; safe from any path.
func (r *Repository) writable() error {
	if err := r.alive(); err != nil {
		return err
	}
	if p := r.degraded.Load(); p != nil {
		return *p
	}
	return nil
}

// Health describes the repository's availability mode for the status RPC
// and scenario oracles.
type Health struct {
	// Mode is "ok", "degraded" (read-only, mutations refused with
	// ErrDegraded) or "failstop" (all operations refused with ErrFatal).
	Mode string
	// Cause is the latched durability error, empty in mode "ok".
	Cause string
}

// Health reports the current availability mode. Lock-free.
func (r *Repository) Health() Health {
	if p := r.fatal.Load(); p != nil {
		return Health{Mode: "failstop", Cause: (*p).Error()}
	}
	if p := r.degraded.Load(); p != nil {
		return Health{Mode: "degraded", Cause: (*p).Error()}
	}
	return Health{Mode: "ok"}
}

// beginMutation takes the quiesce lock in the configured mode (shared in the
// sharded design, exclusive under the Serialized* ablations) and checks
// liveness. It returns the matching unlock.
func (r *Repository) beginMutation() (func(), error) {
	if r.follower.Load() {
		return nil, ErrFollower
	}
	if r.globalWriteLock {
		r.mu.Lock()
		if err := r.writable(); err != nil {
			r.mu.Unlock()
			return nil, err
		}
		return r.mu.Unlock, nil
	}
	r.mu.RLock()
	if err := r.writable(); err != nil {
		r.mu.RUnlock()
		return nil, err
	}
	return r.mu.RUnlock, nil
}

// finishWrite resolves a mutation's durability wait(s) against the
// configured write path and releases its locks in the right order: the
// SerializedWrites ablation waits *before* unlocking (one record, one
// fsync, one writer at a time — the fully serial baseline), the sharded
// default unlocks first so concurrent writers' records share a group-commit
// fsync. unlock must release every lock the mutator holds; waits beyond the
// first are cleanup records whose errors are ignored (replay tolerates
// their absence).
func (r *Repository) finishWrite(unlock func(), waits ...func() (wal.LSN, error)) error {
	flush := func() error {
		var ferr error
		for i, w := range waits {
			if w == nil {
				continue
			}
			if _, err := w(); err != nil && i == 0 {
				ferr = err
			}
		}
		return ferr
	}
	if r.serializedWrites {
		err := flush()
		unlock()
		return err
	}
	unlock()
	return flush()
}

// lockDA looks the DA up (lock-free) and takes its write lock. Under the
// global-lock ablations the per-DA lock is skipped: the exclusive quiesce
// lock already serializes every mutator.
func (r *Repository) lockDA(da string) (*daState, bool) {
	st, ok := (*r.dasPub.Load())[da]
	if !ok {
		return nil, false
	}
	if !r.globalWriteLock {
		st.mu.Lock()
	}
	return st, true
}

// unlockDA releases lockDA.
func (r *Repository) unlockDA(st *daState) {
	if !r.globalWriteLock {
		st.mu.Unlock()
	}
}

// NextID allocates a fresh repository-wide DOV identifier.
func (r *Repository) NextID() version.ID {
	return version.ID(fmt.Sprintf("dov-%06d", r.seq.Add(1)))
}

// CreateGraph creates (idempotently) the derivation graph of a DA.
func (r *Repository) CreateGraph(da string) error {
	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	r.dasMu.Lock()
	if _, ok := r.das[da]; ok {
		r.dasMu.Unlock()
		end()
		return nil
	}
	wait, err := r.appendAsync(recGraphNew, da, []byte(da))
	if err != nil {
		r.dasMu.Unlock()
		end()
		return err
	}
	// Publication after reservation: a checkin can only find the DA (and
	// reserve records into its graph) once the graph's own record holds an
	// earlier log position.
	r.das[da] = &daState{g: version.NewGraph(da)}
	r.publishDAs()
	r.dasMu.Unlock()
	return r.finishWrite(end, wait)
}

// Graph returns the derivation graph of a DA. Lock-free: the DA directory
// is an atomically swapped copy-on-write map (graphs themselves synchronize
// internally).
func (r *Repository) Graph(da string) (*version.Graph, error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return nil, err
	}
	st, ok := (*r.dasPub.Load())[da]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGraph, da)
	}
	return st.g, nil
}

// Checkin validates and durably stores a new DOV, extending its DA's
// derivation graph. This is the server-side half of the DOP checkin
// operation: "the consistency of the newly created DOV has to be checked
// and further, its DA's derivation graph is extended" (Sect. 5.2).
// When root is true the version is adopted as a graph root and may carry
// parents from foreign graphs (initial DOV0 or inherited finals).
//
// Ownership: on success the repository publishes v as an immutable record;
// the caller must not mutate v or v.Object afterwards (DESIGN.md §3.6).
func (r *Repository) Checkin(v *version.DOV, root bool) error {
	return r.CheckinCleanup(v, root, "")
}

// CheckinCleanup performs Checkin and, when cleanupKey is non-empty, deletes
// that metadata key in the same durable commit batch (single fsync). The
// server-TM's 2PC commit uses it to install a DOV and drop its staged
// record with one forced log write.
//
// Concurrency (§3.7): the critical section runs under the quiesce lock
// (shared) plus the DA's write lock, so checkins to distinct DAs proceed in
// parallel and their durability waits share one group-commit fsync.
func (r *Repository) CheckinCleanup(v *version.DOV, root bool, cleanupKey string) error {
	if v == nil {
		return errors.New("repo: nil DOV")
	}
	if v.Object == nil {
		return fmt.Errorf("%w: DOV %s has no payload", ErrValidation, v.ID)
	}
	if v.Object.Type != v.DOT {
		return fmt.Errorf("%w: DOV %s payload type %s, declared DOT %s", ErrValidation, v.ID, v.Object.Type, v.DOT)
	}
	if err := r.cat.Validate(v.Object); err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}

	// Encoding does not need any lock; do it before entering the critical
	// section (the object is the caller's copy).
	objBytes, err := catalog.EncodeObject(v.Object)
	if err != nil {
		return err
	}

	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	st, ok := r.lockDA(v.DA)
	if !ok {
		end()
		return fmt.Errorf("%w: %s", ErrUnknownGraph, v.DA)
	}
	fail := func(err error) error {
		r.unlockDA(st)
		end()
		return err
	}
	// The claim is the race-free duplicate check: it reserves the ID against
	// every concurrent checkin, in any DA, before the log position is taken.
	if !r.idx.claim(v.ID) {
		return fail(fmt.Errorf("%w: %s", version.ErrDuplicateDOV, v.ID))
	}
	if !root {
		// Parents may live in other DAs' graphs (usage inputs) but must
		// exist somewhere in the repository. The lock-free index only shows
		// published versions, i.e. versions whose log reservation already
		// happened — which is exactly what keeps replay order topological
		// across DAs (§3.7).
		for _, p := range v.Parents {
			if _, ok := r.idx.get(p); !ok {
				r.idx.unclaim(v.ID)
				return fail(fmt.Errorf("%w: parent %s of %s", version.ErrUnknownDOV, p, v.ID))
			}
		}
	}
	v.Seq = r.seq.Add(1)

	// Encode the log record into a pooled writer: the WAL frames (copies)
	// the bytes during the reservation, so the buffer is recycled as soon
	// as appendAsync returns.
	recw := binenc.GetWriter(96 + len(objBytes))
	dovRecord{
		ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
		Object: objBytes, Status: v.Status, Fulfilled: v.Fulfilled, Seq: v.Seq, Root: root,
	}.encodeInto(recw)
	// Reserve-then-apply: the reservation pins the record's replay position
	// while the DA lock is held; the durability wait happens after unlock so
	// concurrent checkins share one fsync (see appendAsync).
	wait, err := r.appendAsync(recDOVInsert, v.DA, recw.Bytes())
	recw.Free()
	if err != nil {
		r.idx.unclaim(v.ID)
		return fail(err)
	}
	if root {
		if err := st.g.AdoptRoot(v); err != nil {
			r.idx.unclaim(v.ID)
			return fail(err)
		}
	} else if err := st.g.InsertDerived(v); err != nil {
		r.idx.unclaim(v.ID)
		return fail(err)
	}
	// Publish the immutable record for lock-free readers, consuming the
	// claim. The encoding memo fills lazily on the first checkout (seeding
	// it with objBytes here would pin a second copy of every payload for all
	// history, read or not). From here on v (and its Object) must never be
	// mutated — the repository owns it.
	r.idx.put(v.ID, &dovEntry{dov: v, enc: &encMemo{}, root: root})
	var cleanupWait func() (wal.LSN, error)
	if cleanupKey != "" {
		r.metaMu.Lock()
		if _, ok := r.meta[cleanupKey]; ok {
			// Reserved right behind the insert: the two records normally
			// land in the same batch, so the waits below cost one fsync.
			if w, err := r.appendAsync(recMetaDel, "", []byte(cleanupKey)); err == nil {
				delete(r.meta, cleanupKey)
				r.metaGen++
				cleanupWait = w
			}
		}
		r.metaMu.Unlock()
	}
	if err := r.finishWrite(func() { r.unlockDA(st); end() }, wait, cleanupWait); err != nil {
		return err
	}
	r.fireChange(ChangeEvent{
		Kind: ChangeCheckin, ID: v.ID, DA: v.DA,
		Parents: append([]version.ID(nil), v.Parents...), Status: v.Status,
	})
	return nil
}

// Get returns the stored version with the given ID. The returned record is
// immutable and shared (MVCC checkout semantics, DESIGN.md §3.6): the read
// takes no lock and copies nothing, and in exchange the caller must not
// mutate the DOV or its Object. Tools needing a private scratch copy clone
// explicitly (the client-TM already does at the workstation).
func (r *Repository) Get(id version.ID) (*version.DOV, error) {
	if r.serializedReads {
		return r.getSerialized(id)
	}
	if err := r.alive(); err != nil {
		return nil, err
	}
	e, ok := r.idx.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return e.dov, nil
}

// getSerialized is the pre-MVCC ablation read: repository lock plus a full
// deep clone of the payload (E15 baseline).
func (r *Repository) getSerialized(id version.ID) (*version.DOV, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.alive(); err != nil {
		return nil, err
	}
	e, ok := r.idx.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return e.dov.Clone(), nil
}

// Exists reports whether a version is stored. A fail-stopped repository
// returns the latched ErrFatal instead of a silent false, so callers can
// tell "not stored" from "repository down" (a dead repository must never
// read as a missing DOV).
func (r *Repository) Exists(id version.ID) (bool, error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return false, err
	}
	_, ok := r.idx.get(id)
	return ok, nil
}

// SetStatus durably updates a version's lifecycle status. The update
// installs a fresh immutable record (MVCC): readers holding the superseded
// record keep a consistent view, and the derivation graph swaps to the new
// record under its own lock. Like checkin, the update serializes only
// within the version's DA (§3.7).
func (r *Repository) SetStatus(id version.ID, s version.Status) error {
	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	e, ok := r.idx.get(id)
	if !ok {
		end()
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	st, ok := r.lockDA(e.dov.DA)
	if !ok {
		end()
		return fmt.Errorf("%w: %s", ErrUnknownGraph, e.dov.DA)
	}
	// Re-read under the DA lock: a concurrent update may have republished
	// the entry (its DA never changes).
	e, _ = r.idx.get(id)
	payload := append([]byte(id), 0, byte(s))
	wait, err := r.appendAsync(recDOVStatus, e.dov.DA, payload)
	if err != nil {
		r.unlockDA(st)
		end()
		return err
	}
	nv := *e.dov
	nv.Status = s
	if err := r.republish(st, &nv, e); err != nil {
		r.unlockDA(st)
		end()
		return err
	}
	da := nv.DA
	if err := r.finishWrite(func() { r.unlockDA(st); end() }, wait); err != nil {
		return err
	}
	r.fireChange(ChangeEvent{Kind: ChangeStatus, ID: id, DA: da, Status: s})
	return nil
}

// SetFulfilled records the feature names a version satisfied at its last
// evaluation (volatile cache; recomputable, so not logged). Installs a fresh
// immutable record like SetStatus.
func (r *Repository) SetFulfilled(id version.ID, names []string) error {
	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	defer end()
	e, ok := r.idx.get(id)
	if !ok {
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	st, ok := r.lockDA(e.dov.DA)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, e.dov.DA)
	}
	defer r.unlockDA(st)
	e, _ = r.idx.get(id)
	nv := *e.dov
	nv.Fulfilled = append([]string(nil), names...)
	return r.republish(st, &nv, e)
}

// republish replaces a version's published record with an updated immutable
// copy: derivation graph and read index both swing to nv. The canonical-
// encoding memo and root marker carry over — payloads and graph shape never
// change after checkin. Caller holds the DA's write lock.
func (r *Repository) republish(st *daState, nv *version.DOV, old *dovEntry) error {
	if err := st.g.Replace(nv); err != nil {
		return err
	}
	r.idx.put(nv.ID, &dovEntry{dov: nv, enc: old.enc, root: old.root})
	return nil
}

// LogStats reports the repository WAL's append/batch/sync counters (all
// zero for volatile repositories). The appends/batches ratio is the group-
// commit factor achieved by concurrent transactions.
func (r *Repository) LogStats() (appends, batches, syncs uint64) {
	if r.log == nil {
		return 0, 0, 0
	}
	return r.log.Stats()
}

// Log exposes the repository's redo log (nil for volatile repositories) so
// the embedding server can attach replication: a repl.Sender reads it during
// catch-up and installs its shipper with SetShipper. Callers must not append
// to or close the log directly.
func (r *Repository) Log() *wal.Log { return r.log }

// LogSize reports the logical log size (lifetime high-water LSN; zero for
// volatile repositories). LogSize()-LowWater() is the replay work a restart
// right now would pay — the quantity the background checkpointer bounds.
func (r *Repository) LogSize() int64 {
	if r.log == nil {
		return 0
	}
	return r.log.Size()
}

// LowWater reports the checkpointed log position (replay starts here).
func (r *Repository) LowWater() wal.LSN {
	if r.log == nil {
		return 0
	}
	return r.log.LowWater()
}

// DiskLogBytes reports the on-disk footprint of the live log segments plus
// the installed snapshot chain (manifest and every referenced payload file)
// — what checkpointing keeps bounded by live state.
func (r *Repository) DiskLogBytes() int64 {
	if r.log == nil {
		return 0
	}
	total := r.log.DiskBytes()
	if fi, err := os.Stat(filepath.Join(r.dir, manifestName)); err == nil {
		total += fi.Size()
	}
	r.ckptMu.Lock()
	chain := append([]manifestEntry(nil), r.chain...)
	r.ckptMu.Unlock()
	for _, e := range chain {
		if fi, err := os.Stat(filepath.Join(r.dir, e.file)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Checkpoints reports how many checkpoints completed since Open.
func (r *Repository) Checkpoints() uint64 {
	if r.log == nil {
		return 0
	}
	return r.log.Checkpoints()
}

// DOVCount returns the number of stored versions. Lock-free.
func (r *Repository) DOVCount() int {
	return r.idx.count()
}

// GraphNames returns the names of all derivation graphs, sorted.
func (r *Repository) GraphNames() []string {
	das := *r.dasPub.Load()
	out := make([]string, 0, len(das))
	for n := range das {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutMeta durably stores a metadata value (manager context data).
func (r *Repository) PutMeta(key string, value []byte) error {
	if strings.ContainsRune(key, 0) {
		return errors.New("repo: metadata key must not contain NUL")
	}
	payload := make([]byte, 0, len(key)+1+len(value))
	payload = append(payload, key...)
	payload = append(payload, 0)
	payload = append(payload, value...)
	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	r.metaMu.Lock()
	wait, err := r.appendAsync(recMetaPut, "", payload)
	if err != nil {
		r.metaMu.Unlock()
		end()
		return err
	}
	r.meta[key] = append([]byte(nil), value...)
	r.metaGen++
	return r.finishWrite(func() { r.metaMu.Unlock(); end() }, wait)
}

// GetMeta fetches a metadata value.
func (r *Repository) GetMeta(key string) ([]byte, error) {
	if err := r.alive(); err != nil {
		return nil, err
	}
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	v, ok := r.meta[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMeta, key)
	}
	return append([]byte(nil), v...), nil
}

// DeleteMeta durably removes a metadata value (idempotent).
func (r *Repository) DeleteMeta(key string) error {
	end, err := r.beginMutation()
	if err != nil {
		return err
	}
	r.metaMu.Lock()
	if _, ok := r.meta[key]; !ok {
		r.metaMu.Unlock()
		end()
		return nil
	}
	wait, err := r.appendAsync(recMetaDel, "", []byte(key))
	if err != nil {
		r.metaMu.Unlock()
		end()
		return err
	}
	delete(r.meta, key)
	r.metaGen++
	return r.finishWrite(func() { r.metaMu.Unlock(); end() }, wait)
}

// ListMeta returns all metadata keys with the given prefix, sorted.
func (r *Repository) ListMeta(prefix string) []string {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	var out []string
	for k := range r.meta {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsistency verifies repository invariants: every graph is acyclic
// and every indexed DOV is present in its graph. It quiesces writers (the
// exclusive side of the §3.7 lock order) for a stable cut. Used by tests and
// the recovery path of the server.
func (r *Repository) CheckConsistency() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	das := *r.dasPub.Load()
	for da, st := range das {
		if !st.g.Acyclic() {
			return fmt.Errorf("repo: graph %s has a derivation cycle", da)
		}
	}
	var err error
	r.idx.each(func(id version.ID, e *dovEntry) {
		if err != nil {
			return
		}
		st, ok := das[e.dov.DA]
		if !ok {
			err = fmt.Errorf("repo: DOV %s references missing graph %s", id, e.dov.DA)
			return
		}
		if !st.g.Contains(id) {
			err = fmt.Errorf("repo: DOV %s missing from graph %s", id, e.dov.DA)
		}
	})
	return err
}
