// Package repo implements the CONCORD design-data repository: the
// "advanced DBMS (object and version management)" at the bottom of Fig. 1.
//
// The repository stores design object versions (DOVs) organized into
// per-design-activity derivation graphs, validates every checked-in version
// against its design object type (schema consistency, Sect. 5.2), and makes
// all state durable through a write-ahead redo log so that a server crash
// loses no committed version. It also offers a small durable key/value
// metadata store used by the cooperation manager (DA hierarchy state,
// cooperation protocol log) and the design managers (persistent scripts and
// script logs), mirroring the paper's decision to keep all level-specific
// context data in the server DBMS.
package repo

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/wal"
)

// WAL record types used by the repository.
const (
	recDOVInsert wal.RecordType = iota + 1
	recDOVStatus
	recMetaPut
	recMetaDel
	recGraphNew
)

// Errors reported by the repository.
var (
	ErrUnknownGraph = errors.New("repo: unknown derivation graph")
	ErrUnknownMeta  = errors.New("repo: unknown metadata key")
	ErrValidation   = errors.New("repo: schema validation failed")
)

// Options configures a Repository.
type Options struct {
	// Dir is the durable storage directory; empty means volatile
	// (in-memory only, no crash recovery).
	Dir string
	// Sync forces the log to stable storage on every append.
	Sync bool
}

// Repository is the design data repository. All methods are safe for
// concurrent use.
type Repository struct {
	cat *catalog.Catalog

	mu     sync.RWMutex
	graphs map[string]*version.Graph
	dovs   map[version.ID]*version.DOV // global index
	meta   map[string][]byte
	seq    uint64
	log    *wal.Log
}

// Open creates or recovers a repository. When opts.Dir names a directory
// containing a previous repository log, the full state is rebuilt by replay.
func Open(cat *catalog.Catalog, opts Options) (*Repository, error) {
	if cat == nil {
		return nil, errors.New("repo: nil catalog")
	}
	r := &Repository{
		cat:    cat,
		graphs: make(map[string]*version.Graph),
		dovs:   make(map[version.ID]*version.DOV),
		meta:   make(map[string][]byte),
	}
	if opts.Dir != "" {
		l, err := wal.Open(filepath.Join(opts.Dir, "repo.wal"), wal.Options{SyncOnAppend: opts.Sync})
		if err != nil {
			return nil, err
		}
		r.log = l
		if err := r.recover(); err != nil {
			l.Close()
			return nil, err
		}
	}
	return r, nil
}

// Close releases the underlying log.
func (r *Repository) Close() error {
	if r.log != nil {
		return r.log.Close()
	}
	return nil
}

// Catalog returns the repository's DOT catalog.
func (r *Repository) Catalog() *catalog.Catalog { return r.cat }

type dovRecord struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
	Seq       uint64
	Root      bool // adopted root (foreign parents allowed)
}

func (r *Repository) recover() error {
	return r.log.Replay(func(rec wal.Record) error {
		switch rec.Type {
		case recGraphNew:
			da := string(rec.Payload)
			if _, ok := r.graphs[da]; !ok {
				r.graphs[da] = version.NewGraph(da)
			}
		case recDOVInsert:
			var dr dovRecord
			if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&dr); err != nil {
				return fmt.Errorf("repo: recover DOV: %w", err)
			}
			obj, err := catalog.DecodeObject(dr.Object)
			if err != nil {
				return err
			}
			v := &version.DOV{
				ID: dr.ID, DOT: dr.DOT, DA: dr.DA, Parents: dr.Parents,
				Object: obj, Status: dr.Status, Fulfilled: dr.Fulfilled, Seq: dr.Seq,
			}
			g, ok := r.graphs[dr.DA]
			if !ok {
				g = version.NewGraph(dr.DA)
				r.graphs[dr.DA] = g
			}
			if dr.Root {
				if err := g.AdoptRoot(v); err != nil {
					return err
				}
			} else if err := g.InsertDerived(v); err != nil {
				return err
			}
			r.dovs[v.ID] = v
			if dr.Seq > r.seq {
				r.seq = dr.Seq
			}
		case recDOVStatus:
			parts := strings.SplitN(string(rec.Payload), "\x00", 2)
			if len(parts) != 2 {
				return errors.New("repo: recover status: bad payload")
			}
			id := version.ID(parts[0])
			if v, ok := r.dovs[id]; ok {
				v.Status = version.Status(parts[1][0])
			}
		case recMetaPut:
			parts := bytes.SplitN(rec.Payload, []byte{0}, 2)
			if len(parts) != 2 {
				return errors.New("repo: recover meta: bad payload")
			}
			r.meta[string(parts[0])] = append([]byte(nil), parts[1]...)
		case recMetaDel:
			delete(r.meta, string(rec.Payload))
		}
		return nil
	})
}

func (r *Repository) append(t wal.RecordType, owner string, payload []byte) error {
	if r.log == nil {
		return nil
	}
	_, err := r.log.Append(t, owner, payload)
	return err
}

// NextID allocates a fresh repository-wide DOV identifier.
func (r *Repository) NextID() version.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return version.ID(fmt.Sprintf("dov-%06d", r.seq))
}

// CreateGraph creates (idempotently) the derivation graph of a DA.
func (r *Repository) CreateGraph(da string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[da]; ok {
		return nil
	}
	if err := r.append(recGraphNew, da, []byte(da)); err != nil {
		return err
	}
	r.graphs[da] = version.NewGraph(da)
	return nil
}

// Graph returns the derivation graph of a DA.
func (r *Repository) Graph(da string) (*version.Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.graphs[da]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGraph, da)
	}
	return g, nil
}

// Checkin validates and durably stores a new DOV, extending its DA's
// derivation graph. This is the server-side half of the DOP checkin
// operation: "the consistency of the newly created DOV has to be checked
// and further, its DA's derivation graph is extended" (Sect. 5.2).
// When root is true the version is adopted as a graph root and may carry
// parents from foreign graphs (initial DOV0 or inherited finals).
func (r *Repository) Checkin(v *version.DOV, root bool) error {
	if v == nil {
		return errors.New("repo: nil DOV")
	}
	if v.Object == nil {
		return fmt.Errorf("%w: DOV %s has no payload", ErrValidation, v.ID)
	}
	if v.Object.Type != v.DOT {
		return fmt.Errorf("%w: DOV %s payload type %s, declared DOT %s", ErrValidation, v.ID, v.Object.Type, v.DOT)
	}
	if err := r.cat.Validate(v.Object); err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.graphs[v.DA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, v.DA)
	}
	if _, dup := r.dovs[v.ID]; dup {
		return fmt.Errorf("%w: %s", version.ErrDuplicateDOV, v.ID)
	}
	if !root {
		// Parents may live in other DAs' graphs (usage inputs) but must
		// exist somewhere in the repository.
		for _, p := range v.Parents {
			if _, ok := r.dovs[p]; !ok {
				return fmt.Errorf("%w: parent %s of %s", version.ErrUnknownDOV, p, v.ID)
			}
		}
	}
	r.seq++
	v.Seq = r.seq

	objBytes, err := catalog.EncodeObject(v.Object)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dovRecord{
		ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
		Object: objBytes, Status: v.Status, Fulfilled: v.Fulfilled, Seq: v.Seq, Root: root,
	}); err != nil {
		return fmt.Errorf("repo: encode DOV: %w", err)
	}
	// Log-before-apply: a crash after the append replays to the same state.
	if err := r.append(recDOVInsert, v.DA, buf.Bytes()); err != nil {
		return err
	}
	if root {
		if err := g.AdoptRoot(v); err != nil {
			return err
		}
	} else if err := g.InsertDerived(v); err != nil {
		return err
	}
	r.dovs[v.ID] = v
	return nil
}

// Get returns a deep copy of the version with the given ID; callers may
// mutate the copy freely (checkout semantics).
func (r *Repository) Get(id version.ID) (*version.DOV, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.dovs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return v.Clone(), nil
}

// Exists reports whether a version is stored.
func (r *Repository) Exists(id version.ID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.dovs[id]
	return ok
}

// SetStatus durably updates a version's lifecycle status.
func (r *Repository) SetStatus(id version.ID, s version.Status) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.dovs[id]
	if !ok {
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	payload := append([]byte(id), 0, byte(s))
	if err := r.append(recDOVStatus, v.DA, payload); err != nil {
		return err
	}
	v.Status = s
	return nil
}

// SetFulfilled records the feature names a version satisfied at its last
// evaluation (volatile cache; recomputable, so not logged).
func (r *Repository) SetFulfilled(id version.ID, names []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.dovs[id]
	if !ok {
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	v.Fulfilled = append([]string(nil), names...)
	return nil
}

// DOVCount returns the number of stored versions.
func (r *Repository) DOVCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.dovs)
}

// GraphNames returns the names of all derivation graphs, sorted.
func (r *Repository) GraphNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutMeta durably stores a metadata value (manager context data).
func (r *Repository) PutMeta(key string, value []byte) error {
	if strings.ContainsRune(key, 0) {
		return errors.New("repo: metadata key must not contain NUL")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	payload := make([]byte, 0, len(key)+1+len(value))
	payload = append(payload, key...)
	payload = append(payload, 0)
	payload = append(payload, value...)
	if err := r.append(recMetaPut, "", payload); err != nil {
		return err
	}
	r.meta[key] = append([]byte(nil), value...)
	return nil
}

// GetMeta fetches a metadata value.
func (r *Repository) GetMeta(key string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.meta[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMeta, key)
	}
	return append([]byte(nil), v...), nil
}

// DeleteMeta durably removes a metadata value (idempotent).
func (r *Repository) DeleteMeta(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.meta[key]; !ok {
		return nil
	}
	if err := r.append(recMetaDel, "", []byte(key)); err != nil {
		return err
	}
	delete(r.meta, key)
	return nil
}

// ListMeta returns all metadata keys with the given prefix, sorted.
func (r *Repository) ListMeta(prefix string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k := range r.meta {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsistency verifies repository invariants: every graph is acyclic
// and every indexed DOV is present in its graph. Used by tests and the
// recovery path of the server.
func (r *Repository) CheckConsistency() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for da, g := range r.graphs {
		if !g.Acyclic() {
			return fmt.Errorf("repo: graph %s has a derivation cycle", da)
		}
	}
	for id, v := range r.dovs {
		g, ok := r.graphs[v.DA]
		if !ok {
			return fmt.Errorf("repo: DOV %s references missing graph %s", id, v.DA)
		}
		if !g.Contains(id) {
			return fmt.Errorf("repo: DOV %s missing from graph %s", id, v.DA)
		}
	}
	return nil
}
