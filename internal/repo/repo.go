// Package repo implements the CONCORD design-data repository: the
// "advanced DBMS (object and version management)" at the bottom of Fig. 1.
//
// The repository stores design object versions (DOVs) organized into
// per-design-activity derivation graphs, validates every checked-in version
// against its design object type (schema consistency, Sect. 5.2), and makes
// all state durable through a write-ahead redo log so that a server crash
// loses no committed version. It also offers a small durable key/value
// metadata store used by the cooperation manager (DA hierarchy state,
// cooperation protocol log) and the design managers (persistent scripts and
// script logs), mirroring the paper's decision to keep all level-specific
// context data in the server DBMS.
package repo

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/wal"
)

// WAL record types used by the repository.
const (
	recDOVInsert wal.RecordType = iota + 1
	recDOVStatus
	recMetaPut
	recMetaDel
	recGraphNew
)

// Errors reported by the repository.
var (
	ErrUnknownGraph = errors.New("repo: unknown derivation graph")
	ErrUnknownMeta  = errors.New("repo: unknown metadata key")
	ErrValidation   = errors.New("repo: schema validation failed")
	// ErrFatal reports that a forced log write failed after its mutation
	// was applied in memory: the volatile state may be ahead of the log,
	// so the repository fail-stops rather than serve phantom data. A
	// restart recovers the durable prefix.
	ErrFatal = errors.New("repo: durability failure, repository is fail-stop")
)

// Options configures a Repository.
type Options struct {
	// Dir is the durable storage directory; empty means volatile
	// (in-memory only, no crash recovery).
	Dir string
	// Sync forces the log to stable storage on every append.
	Sync bool
	// NoGroupCommit disables WAL append batching (one write+fsync per
	// record). Ablation baseline for experiments; see wal.Options.
	NoGroupCommit bool
	// SegmentBytes is the WAL segment rotation threshold (0 uses
	// wal.DefaultSegmentBytes). Checkpointing deletes whole sealed
	// segments, so smaller segments compact at a finer grain.
	SegmentBytes int64
	// CrashHook, when non-nil, is invoked at the named steps of the
	// checkpoint protocol (the repo Crash* constants plus the wal.Crash*
	// constants). A non-nil return aborts the operation at that point,
	// simulating a crash there. Tests only; see CrashPoints.
	CrashHook func(point string) error
	// SerializedReads reverts the read path to the pre-MVCC design: Get
	// takes the repository lock and deep-clones the payload, Exists and
	// EncodedObject read under the lock. Ablation baseline for E15; never
	// set in production.
	SerializedReads bool
}

// Repository is the design data repository. All methods are safe for
// concurrent use.
//
// Reads are multi-versioned (DESIGN.md §3.6): Get, Exists, EncodedObject and
// Graph never take the repository lock and never copy payloads — they return
// immutable records published through the copy-on-write index in mvcc.go.
// Callers must treat every returned DOV (and its Object) as read-only.
type Repository struct {
	cat *catalog.Catalog
	dir string
	// hook is the crash-point fault-injection callback (tests only).
	hook func(point string) error
	// serializedReads selects the pre-MVCC locked+cloning read path
	// (Options.SerializedReads; E15 ablation baseline).
	serializedReads bool

	// mu guards the writer-side state below. Readers go through idx and
	// graphsPub instead; only mutators, snapshot encoding and the
	// diagnostics that enumerate state take this lock.
	mu     sync.RWMutex
	graphs map[string]*version.Graph
	dovs   map[version.ID]*version.DOV // writer-side index
	meta   map[string][]byte
	// roots marks versions adopted as graph roots (foreign parents
	// allowed); snapshots must preserve the distinction so rebuilt graphs
	// wire exactly the edges replay would.
	roots map[version.ID]bool
	seq   uint64
	log   *wal.Log

	// idx is the lock-free read index (mvcc.go). Writers publish into it
	// while holding mu; readers only load.
	idx dovIndex
	// graphsPub is the atomically swapped graph directory for lock-free
	// Graph lookups (graphs are created rarely; each creation copies the
	// map and swaps the pointer).
	graphsPub atomic.Pointer[map[string]*version.Graph]
	// fatal is latched when a reserved log record failed to become durable
	// (see appendAsync): the in-memory state is then ahead of the log and
	// every subsequent operation is refused with ErrFatal. Atomic so the
	// lock-free read path can check it without the lock.
	fatal atomic.Pointer[error]

	// ckptMu serializes checkpoints and guards snapLSN, the log position
	// covered by the last installed snapshot.
	ckptMu  sync.Mutex
	snapLSN wal.LSN

	// onChange, when set, is invoked after every durable version mutation
	// (see SetChangeHook).
	changeMu sync.RWMutex
	onChange func(ChangeEvent)
}

// ChangeKind distinguishes version-change events pushed to the hook.
type ChangeKind uint8

// Version-change kinds.
const (
	// ChangeCheckin reports a newly installed DOV; Parents carries the
	// versions it supersedes as "latest in its line".
	ChangeCheckin ChangeKind = iota + 1
	// ChangeStatus reports a lifecycle-status update (promotion,
	// invalidation) of an existing DOV.
	ChangeStatus
)

// ChangeEvent describes one durable version mutation.
type ChangeEvent struct {
	// Kind says what happened.
	Kind ChangeKind
	// ID is the affected (new or updated) version.
	ID version.ID
	// DA owns the version's derivation graph.
	DA string
	// Parents are the superseded versions (ChangeCheckin only).
	Parents []version.ID
	// Status is the new lifecycle status.
	Status version.Status
}

// SetChangeHook registers fn to run after every durable version mutation
// (checkin, status update), outside all repository locks and after the
// mutation's log record is durable. The server-TM uses it to push workstation
// cache invalidations (DESIGN.md §4). One hook; nil unregisters.
func (r *Repository) SetChangeHook(fn func(ChangeEvent)) {
	r.changeMu.Lock()
	r.onChange = fn
	r.changeMu.Unlock()
}

// fireChange delivers ev to the registered hook, if any.
func (r *Repository) fireChange(ev ChangeEvent) {
	r.changeMu.RLock()
	fn := r.onChange
	r.changeMu.RUnlock()
	if fn != nil {
		fn(ev)
	}
}

// EncodedObject returns the canonical encoding and content hash of a stored
// version's payload. Both are memoized per version on first use (payloads
// are immutable once checked in), so the checkout and delta paths read them
// without locking, cloning or allocating after the first request.
func (r *Repository) EncodedObject(id version.ID) (enc, hash []byte, err error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return nil, nil, err
	}
	e, ok := r.idx.get(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return e.encoded()
}

// Open creates or recovers a repository. When opts.Dir names a directory
// containing prior repository state, recovery loads the last snapshot (if
// any) and replays only the redo-log suffix behind it, so restart work is
// bounded by live state plus the records since the last checkpoint.
func Open(cat *catalog.Catalog, opts Options) (*Repository, error) {
	if cat == nil {
		return nil, errors.New("repo: nil catalog")
	}
	r := &Repository{
		cat:             cat,
		dir:             opts.Dir,
		hook:            opts.CrashHook,
		serializedReads: opts.SerializedReads,
		graphs:          make(map[string]*version.Graph),
		dovs:            make(map[version.ID]*version.DOV),
		meta:            make(map[string][]byte),
		roots:           make(map[version.ID]bool),
	}
	r.idx.init()
	if opts.Dir != "" {
		snapLSN, err := r.loadSnapshot()
		if err != nil {
			return nil, err
		}
		r.snapLSN = snapLSN
		l, err := wal.Open(filepath.Join(opts.Dir, "repo.wal"), wal.Options{
			SyncOnAppend:  opts.Sync,
			NoGroupCommit: opts.NoGroupCommit,
			SegmentBytes:  opts.SegmentBytes,
			CrashHook:     opts.CrashHook,
		})
		if err != nil {
			return nil, err
		}
		r.log = l
		// Complete a checkpoint whose snapshot installed but whose log mark
		// was lost to a crash: the snapshot's position is authoritative and
		// wal.Checkpoint is idempotent and monotonic.
		if snapLSN > l.LowWater() {
			if err := l.Checkpoint(snapLSN); err != nil {
				l.Close()
				return nil, err
			}
		}
		if err := r.recover(snapLSN); err != nil {
			l.Close()
			return nil, err
		}
	}
	r.publishIndex()
	return r, nil
}

// publishIndex bulk-builds the lock-free read index from the recovered
// writer-side state. Called once at the end of Open, before the repository
// is shared. Encoding memos start empty and fill on first checkout, so a
// large recovered history costs no second payload copy up front.
func (r *Repository) publishIndex() {
	entries := make(map[version.ID]*dovEntry, len(r.dovs))
	for id, v := range r.dovs {
		entries[id] = &dovEntry{dov: v, enc: &encMemo{}}
	}
	r.idx.rebuild(entries)
	r.publishGraphsLocked()
}

// publishGraphsLocked swaps in a fresh copy of the graph directory. Callers
// hold r.mu (or own the repository exclusively, as at Open).
func (r *Repository) publishGraphsLocked() {
	m := make(map[string]*version.Graph, len(r.graphs))
	for da, g := range r.graphs {
		m[da] = g
	}
	r.graphsPub.Store(&m)
}

// Close releases the underlying log.
func (r *Repository) Close() error {
	if r.log != nil {
		return r.log.Close()
	}
	return nil
}

// Catalog returns the repository's DOT catalog.
func (r *Repository) Catalog() *catalog.Catalog { return r.cat }

type dovRecord struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
	Seq       uint64
	Root      bool // adopted root (foreign parents allowed)
}

// encodeInto writes the record in the binenc hot-path format (gob's
// per-record engine compilation showed up in the checkin profile). Checkin
// encodes into a pooled writer; the bytes only need to survive until the WAL
// frames them.
func (d dovRecord) encodeInto(w *binenc.Writer) {
	w.Str(string(d.ID))
	w.Str(d.DOT)
	w.Str(d.DA)
	w.U64(uint64(len(d.Parents)))
	for _, p := range d.Parents {
		w.Str(string(p))
	}
	w.Blob(d.Object)
	w.Byte(byte(d.Status))
	w.Strs(d.Fulfilled)
	w.U64(d.Seq)
	w.Bool(d.Root)
}

// encode is encodeInto with a fresh buffer (snapshot path).
func (d dovRecord) encode() []byte {
	w := binenc.NewWriter(96 + len(d.Object))
	d.encodeInto(w)
	return w.Bytes()
}

func decodeDOVRecord(data []byte) (dovRecord, error) {
	r := binenc.NewReader(data)
	d := dovRecord{ID: version.ID(r.Str()), DOT: r.Str(), DA: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		d.Parents = append(d.Parents, version.ID(r.Str()))
	}
	d.Object = r.Blob()
	d.Status = version.Status(r.Byte())
	d.Fulfilled = r.Strs()
	d.Seq = r.U64()
	d.Root = r.Bool()
	return d, r.Err()
}

// applyDOVRecord decodes one durable DOV record (from the log or a
// snapshot) and inserts the version exactly as the original checkin did.
func (r *Repository) applyDOVRecord(data []byte) error {
	dr, err := decodeDOVRecord(data)
	if err != nil {
		return fmt.Errorf("repo: recover DOV: %w", err)
	}
	obj, err := catalog.DecodeObject(dr.Object)
	if err != nil {
		return err
	}
	v := &version.DOV{
		ID: dr.ID, DOT: dr.DOT, DA: dr.DA, Parents: dr.Parents,
		Object: obj, Status: dr.Status, Fulfilled: dr.Fulfilled, Seq: dr.Seq,
	}
	g, ok := r.graphs[dr.DA]
	if !ok {
		g = version.NewGraph(dr.DA)
		r.graphs[dr.DA] = g
	}
	if dr.Root {
		if err := g.AdoptRoot(v); err != nil {
			return err
		}
		r.roots[v.ID] = true
	} else if err := g.InsertDerived(v); err != nil {
		return err
	}
	r.dovs[v.ID] = v
	if dr.Seq > r.seq {
		r.seq = dr.Seq
	}
	return nil
}

// recover replays the redo-log suffix behind the loaded snapshot. Records
// below snapLSN are already reflected in the snapshot state (the WAL's own
// low-water mark normally equals snapLSN, but a crash between snapshot
// install and log mark can leave older records in the log).
func (r *Repository) recover(snapLSN wal.LSN) error {
	return r.log.Replay(func(rec wal.Record) error {
		if rec.LSN < snapLSN {
			return nil
		}
		switch rec.Type {
		case recGraphNew:
			da := string(rec.Payload)
			if _, ok := r.graphs[da]; !ok {
				r.graphs[da] = version.NewGraph(da)
			}
		case recDOVInsert:
			if err := r.applyDOVRecord(rec.Payload); err != nil {
				return err
			}
		case recDOVStatus:
			parts := strings.SplitN(string(rec.Payload), "\x00", 2)
			if len(parts) != 2 {
				return errors.New("repo: recover status: bad payload")
			}
			id := version.ID(parts[0])
			if v, ok := r.dovs[id]; ok {
				v.Status = version.Status(parts[1][0])
			}
		case recMetaPut:
			parts := bytes.SplitN(rec.Payload, []byte{0}, 2)
			if len(parts) != 2 {
				return errors.New("repo: recover meta: bad payload")
			}
			r.meta[string(parts[0])] = append([]byte(nil), parts[1]...)
		case recMetaDel:
			delete(r.meta, string(rec.Payload))
		}
		return nil
	})
}

// noWait is the wait function of volatile repositories (no log).
func noWait() (wal.LSN, error) { return 0, nil }

// appendAsync reserves a log record and returns its durability wait
// function. Mutators call it while holding r.mu — the reservation fixes the
// record's replay position relative to every other mutation — and invoke the
// wait after releasing r.mu, so the fsync happens outside the repository
// lock and concurrent transactions' records group into one commit batch.
//
// The in-memory state is applied at reservation time, before durability.
// This never lets a replay dangle: records enter the log in reservation
// order, so anything derived from a not-yet-durable version sits at a later
// LSN and the crash-surviving log prefix is always self-consistent. The one
// remaining hazard is a failed wait (disk error): the applied state would
// be ahead of the log, so the wait wrapper below turns that into a
// repository-wide fail-stop (ErrFatal) instead of serving phantom data.
func (r *Repository) appendAsync(t wal.RecordType, owner string, payload []byte) (func() (wal.LSN, error), error) {
	if r.log == nil {
		return noWait, nil
	}
	wait, err := r.log.AppendAsync(t, owner, payload)
	if err != nil {
		return nil, err
	}
	return func() (wal.LSN, error) {
		lsn, err := wait()
		if err != nil {
			r.failStop(err)
		}
		return lsn, err
	}, nil
}

// failStop latches the fatal state. The latch is published atomically so the
// lock-free read path observes it without the repository lock.
func (r *Repository) failStop(cause error) {
	r.mu.Lock()
	if r.fatal.Load() == nil {
		err := fmt.Errorf("%w: %v", ErrFatal, cause)
		r.fatal.Store(&err)
	}
	r.mu.Unlock()
}

// alive returns the latched fatal error, if any. Lock-free; safe from any
// path.
func (r *Repository) alive() error {
	if p := r.fatal.Load(); p != nil {
		return *p
	}
	return nil
}

// NextID allocates a fresh repository-wide DOV identifier.
func (r *Repository) NextID() version.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return version.ID(fmt.Sprintf("dov-%06d", r.seq))
}

// CreateGraph creates (idempotently) the derivation graph of a DA.
func (r *Repository) CreateGraph(da string) error {
	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	if _, ok := r.graphs[da]; ok {
		r.mu.Unlock()
		return nil
	}
	wait, err := r.appendAsync(recGraphNew, da, []byte(da))
	if err != nil {
		r.mu.Unlock()
		return err
	}
	r.graphs[da] = version.NewGraph(da)
	r.publishGraphsLocked()
	r.mu.Unlock()
	_, err = wait()
	return err
}

// Graph returns the derivation graph of a DA. Lock-free: the graph directory
// is an atomically swapped copy-on-write map (graphs themselves synchronize
// internally).
func (r *Repository) Graph(da string) (*version.Graph, error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return nil, err
	}
	g, ok := (*r.graphsPub.Load())[da]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGraph, da)
	}
	return g, nil
}

// Checkin validates and durably stores a new DOV, extending its DA's
// derivation graph. This is the server-side half of the DOP checkin
// operation: "the consistency of the newly created DOV has to be checked
// and further, its DA's derivation graph is extended" (Sect. 5.2).
// When root is true the version is adopted as a graph root and may carry
// parents from foreign graphs (initial DOV0 or inherited finals).
//
// Ownership: on success the repository publishes v as an immutable record;
// the caller must not mutate v or v.Object afterwards (DESIGN.md §3.6).
func (r *Repository) Checkin(v *version.DOV, root bool) error {
	return r.CheckinCleanup(v, root, "")
}

// CheckinCleanup performs Checkin and, when cleanupKey is non-empty, deletes
// that metadata key in the same durable commit batch (single fsync). The
// server-TM's 2PC commit uses it to install a DOV and drop its staged
// record with one forced log write.
func (r *Repository) CheckinCleanup(v *version.DOV, root bool, cleanupKey string) error {
	if v == nil {
		return errors.New("repo: nil DOV")
	}
	if v.Object == nil {
		return fmt.Errorf("%w: DOV %s has no payload", ErrValidation, v.ID)
	}
	if v.Object.Type != v.DOT {
		return fmt.Errorf("%w: DOV %s payload type %s, declared DOT %s", ErrValidation, v.ID, v.Object.Type, v.DOT)
	}
	if err := r.cat.Validate(v.Object); err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}

	// Encoding does not need the lock; do it before entering the critical
	// section (the object is the caller's copy).
	objBytes, err := catalog.EncodeObject(v.Object)
	if err != nil {
		return err
	}

	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	g, ok := r.graphs[v.DA]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownGraph, v.DA)
	}
	if _, dup := r.dovs[v.ID]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", version.ErrDuplicateDOV, v.ID)
	}
	if !root {
		// Parents may live in other DAs' graphs (usage inputs) but must
		// exist somewhere in the repository.
		for _, p := range v.Parents {
			if _, ok := r.dovs[p]; !ok {
				r.mu.Unlock()
				return fmt.Errorf("%w: parent %s of %s", version.ErrUnknownDOV, p, v.ID)
			}
		}
	}
	r.seq++
	v.Seq = r.seq

	// Encode the log record into a pooled writer: the WAL frames (copies)
	// the bytes during the reservation, so the buffer is recycled as soon
	// as appendAsync returns.
	recw := binenc.GetWriter(96 + len(objBytes))
	dovRecord{
		ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
		Object: objBytes, Status: v.Status, Fulfilled: v.Fulfilled, Seq: v.Seq, Root: root,
	}.encodeInto(recw)
	// Reserve-then-apply: the reservation pins the record's replay position
	// while r.mu is held; the durability wait happens after unlock so
	// concurrent checkins share one fsync (see appendAsync).
	wait, err := r.appendAsync(recDOVInsert, v.DA, recw.Bytes())
	recw.Free()
	if err != nil {
		r.mu.Unlock()
		return err
	}
	if root {
		if err := g.AdoptRoot(v); err != nil {
			r.mu.Unlock()
			return err
		}
		r.roots[v.ID] = true
	} else if err := g.InsertDerived(v); err != nil {
		r.mu.Unlock()
		return err
	}
	r.dovs[v.ID] = v
	// Publish the immutable record for lock-free readers. The encoding memo
	// fills lazily on the first checkout (seeding it with objBytes here
	// would pin a second copy of every payload for all history, read or
	// not). From here on v (and its Object) must never be mutated — the
	// repository owns it.
	r.idx.put(v.ID, &dovEntry{dov: v, enc: &encMemo{}})
	var cleanupWait func() (wal.LSN, error)
	if cleanupKey != "" {
		if _, ok := r.meta[cleanupKey]; ok {
			// Reserved right behind the insert: the two records normally
			// land in the same batch, so the waits below cost one fsync.
			if w, err := r.appendAsync(recMetaDel, "", []byte(cleanupKey)); err == nil {
				delete(r.meta, cleanupKey)
				cleanupWait = w
			}
		}
	}
	r.mu.Unlock()
	if _, err := wait(); err != nil {
		return err
	}
	if cleanupWait != nil {
		cleanupWait() //nolint:errcheck // cleanup record; replay tolerates its absence
	}
	r.fireChange(ChangeEvent{
		Kind: ChangeCheckin, ID: v.ID, DA: v.DA,
		Parents: append([]version.ID(nil), v.Parents...), Status: v.Status,
	})
	return nil
}

// Get returns the stored version with the given ID. The returned record is
// immutable and shared (MVCC checkout semantics, DESIGN.md §3.6): the read
// takes no lock and copies nothing, and in exchange the caller must not
// mutate the DOV or its Object. Tools needing a private scratch copy clone
// explicitly (the client-TM already does at the workstation).
func (r *Repository) Get(id version.ID) (*version.DOV, error) {
	if r.serializedReads {
		return r.getSerialized(id)
	}
	if err := r.alive(); err != nil {
		return nil, err
	}
	e, ok := r.idx.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return e.dov, nil
}

// getSerialized is the pre-MVCC ablation read: repository lock plus a full
// deep clone of the payload (E15 baseline).
func (r *Repository) getSerialized(id version.ID) (*version.DOV, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.alive(); err != nil {
		return nil, err
	}
	v, ok := r.dovs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	return v.Clone(), nil
}

// Exists reports whether a version is stored. A fail-stopped repository
// returns the latched ErrFatal instead of a silent false, so callers can
// tell "not stored" from "repository down" (a dead repository must never
// read as a missing DOV).
func (r *Repository) Exists(id version.ID) (bool, error) {
	if r.serializedReads {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	if err := r.alive(); err != nil {
		return false, err
	}
	_, ok := r.idx.get(id)
	return ok, nil
}

// SetStatus durably updates a version's lifecycle status. The update
// installs a fresh immutable record (MVCC): readers holding the superseded
// record keep a consistent view, and the derivation graph swaps to the new
// record under its own lock.
func (r *Repository) SetStatus(id version.ID, s version.Status) error {
	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	v, ok := r.dovs[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	payload := append([]byte(id), 0, byte(s))
	wait, err := r.appendAsync(recDOVStatus, v.DA, payload)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	nv := *v
	nv.Status = s
	if err := r.republishLocked(&nv); err != nil {
		r.mu.Unlock()
		return err
	}
	da := v.DA
	r.mu.Unlock()
	if _, err := wait(); err != nil {
		return err
	}
	r.fireChange(ChangeEvent{Kind: ChangeStatus, ID: id, DA: da, Status: s})
	return nil
}

// SetFulfilled records the feature names a version satisfied at its last
// evaluation (volatile cache; recomputable, so not logged). Installs a fresh
// immutable record like SetStatus.
func (r *Repository) SetFulfilled(id version.ID, names []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.dovs[id]
	if !ok {
		return fmt.Errorf("%w: %s", version.ErrUnknownDOV, id)
	}
	nv := *v
	nv.Fulfilled = append([]string(nil), names...)
	return r.republishLocked(&nv)
}

// republishLocked replaces a version's published record with an updated
// immutable copy: writer-side index, derivation graph and read index all
// swing to nv. The canonical-encoding memo carries over — payloads never
// change after checkin. Caller holds r.mu.
func (r *Repository) republishLocked(nv *version.DOV) error {
	g, ok := r.graphs[nv.DA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, nv.DA)
	}
	if err := g.Replace(nv); err != nil {
		return err
	}
	r.dovs[nv.ID] = nv
	if e, ok := r.idx.get(nv.ID); ok {
		r.idx.put(nv.ID, &dovEntry{dov: nv, enc: e.enc})
	}
	return nil
}

// LogStats reports the repository WAL's append/batch/sync counters (all
// zero for volatile repositories). The appends/batches ratio is the group-
// commit factor achieved by concurrent transactions.
func (r *Repository) LogStats() (appends, batches, syncs uint64) {
	if r.log == nil {
		return 0, 0, 0
	}
	return r.log.Stats()
}

// LogSize reports the logical log size (lifetime high-water LSN; zero for
// volatile repositories). LogSize()-LowWater() is the replay work a restart
// right now would pay — the quantity the background checkpointer bounds.
func (r *Repository) LogSize() int64 {
	if r.log == nil {
		return 0
	}
	return r.log.Size()
}

// LowWater reports the checkpointed log position (replay starts here).
func (r *Repository) LowWater() wal.LSN {
	if r.log == nil {
		return 0
	}
	return r.log.LowWater()
}

// DiskLogBytes reports the on-disk footprint of the live log segments plus
// the installed snapshot — what checkpointing keeps bounded by live state.
func (r *Repository) DiskLogBytes() int64 {
	if r.log == nil {
		return 0
	}
	total := r.log.DiskBytes()
	if fi, err := os.Stat(filepath.Join(r.dir, snapName)); err == nil {
		total += fi.Size()
	}
	return total
}

// Checkpoints reports how many checkpoints completed since Open.
func (r *Repository) Checkpoints() uint64 {
	if r.log == nil {
		return 0
	}
	return r.log.Checkpoints()
}

// DOVCount returns the number of stored versions.
func (r *Repository) DOVCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.dovs)
}

// GraphNames returns the names of all derivation graphs, sorted.
func (r *Repository) GraphNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutMeta durably stores a metadata value (manager context data).
func (r *Repository) PutMeta(key string, value []byte) error {
	if strings.ContainsRune(key, 0) {
		return errors.New("repo: metadata key must not contain NUL")
	}
	payload := make([]byte, 0, len(key)+1+len(value))
	payload = append(payload, key...)
	payload = append(payload, 0)
	payload = append(payload, value...)
	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	wait, err := r.appendAsync(recMetaPut, "", payload)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	r.meta[key] = append([]byte(nil), value...)
	r.mu.Unlock()
	_, err = wait()
	return err
}

// GetMeta fetches a metadata value.
func (r *Repository) GetMeta(key string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.alive(); err != nil {
		return nil, err
	}
	v, ok := r.meta[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMeta, key)
	}
	return append([]byte(nil), v...), nil
}

// DeleteMeta durably removes a metadata value (idempotent).
func (r *Repository) DeleteMeta(key string) error {
	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	if _, ok := r.meta[key]; !ok {
		r.mu.Unlock()
		return nil
	}
	wait, err := r.appendAsync(recMetaDel, "", []byte(key))
	if err != nil {
		r.mu.Unlock()
		return err
	}
	delete(r.meta, key)
	r.mu.Unlock()
	_, err = wait()
	return err
}

// ListMeta returns all metadata keys with the given prefix, sorted.
func (r *Repository) ListMeta(prefix string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k := range r.meta {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsistency verifies repository invariants: every graph is acyclic
// and every indexed DOV is present in its graph. Used by tests and the
// recovery path of the server.
func (r *Repository) CheckConsistency() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for da, g := range r.graphs {
		if !g.Acyclic() {
			return fmt.Errorf("repo: graph %s has a derivation cycle", da)
		}
	}
	for id, v := range r.dovs {
		g, ok := r.graphs[v.DA]
		if !ok {
			return fmt.Errorf("repo: DOV %s references missing graph %s", id, v.DA)
		}
		if !g.Contains(id) {
			return fmt.Errorf("repo: DOV %s missing from graph %s", id, v.DA)
		}
	}
	return nil
}
