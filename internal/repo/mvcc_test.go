package repo

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"concord/internal/catalog"
	"concord/internal/version"
)

// TestConcurrentReadersVsWriters hammers the lock-free read path while
// checkins, status updates and quality updates run underneath: every read
// must observe a fully consistent immutable DOV — correct payload for its
// ID, matching declared type, a legal status — never a partial write. Run
// with -race; the MVCC contract (records are never mutated after
// publication) is exactly what makes this pass.
func TestConcurrentReadersVsWriters(t *testing.T) {
	r := openRepo(t, t.TempDir())
	const das = 4
	const perDA = 40
	const readers = 8
	for i := 0; i < das; i++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var readsDone atomic.Uint64
	errs := make(chan error, das+readers)
	var wg sync.WaitGroup

	// Writers: per-DA derivation chains plus status/fulfilled churn on
	// already-published versions.
	for i := 0; i < das; i++ {
		wg.Add(1)
		go func(da int) {
			defer wg.Done()
			name := fmt.Sprintf("da%d", da)
			var prev version.ID
			for j := 0; j < perDA; j++ {
				id := version.ID(fmt.Sprintf("%s/v%d", name, j))
				v := mkDOV(string(id), name, float64(j))
				if prev != "" {
					v.Parents = []version.ID{prev}
				}
				if err := r.Checkin(v, prev == ""); err != nil {
					errs <- err
					return
				}
				if j%3 == 0 {
					if err := r.SetStatus(id, version.StatusPropagated); err != nil {
						errs <- err
						return
					}
				}
				if j%5 == 0 {
					if err := r.SetFulfilled(id, []string{"f1", "f2"}); err != nil {
						errs <- err
						return
					}
				}
				prev = id
			}
		}(i)
	}

	// Readers: spin over the whole keyspace with every lock-free entry
	// point, validating each observed record end to end.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for !stop.Load() {
				da := seed % das
				j := int(readsDone.Add(1)) % perDA
				id := version.ID(fmt.Sprintf("da%d/v%d", da, j))
				ok, err := r.Exists(id)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					continue // not yet checked in
				}
				v, err := r.Get(id)
				if err != nil {
					// Exists raced a concurrent publish; a later Get must
					// succeed, but this one legitimately ran first only if
					// the version is unknown — anything else is a bug.
					if errors.Is(err, version.ErrUnknownDOV) {
						continue
					}
					errs <- err
					return
				}
				if v.ID != id || v.Object == nil || v.Object.Type != v.DOT {
					errs <- fmt.Errorf("inconsistent DOV %s: %+v", id, v)
					return
				}
				if got := catalog.NumAttr(v.Object, "area"); got != float64(j) {
					errs <- fmt.Errorf("DOV %s payload area = %v, want %d", id, got, j)
					return
				}
				if v.Status < version.StatusWorking || v.Status > version.StatusInvalid {
					errs <- fmt.Errorf("DOV %s has impossible status %d", id, v.Status)
					return
				}
				enc, hash, err := r.EncodedObject(id)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(hash, catalog.HashEncoded(enc)) {
					errs <- fmt.Errorf("DOV %s hash does not cover its encoding", id)
					return
				}
				if _, err := r.Graph(fmt.Sprintf("da%d", da)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Let the writers finish (poll the version count, surfacing writer
	// errors as they happen), then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for r.DOVCount() < das*perDA {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	stop.Store(true)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestReadPathZeroAllocs pins the MVCC fast path: Get, Exists and
// EncodedObject allocate nothing once the version is published and its hash
// memoized.
func TestReadPathZeroAllocs(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da", 42), true); err != nil {
		t.Fatal(err)
	}
	// Warm the hash memo.
	if _, _, err := r.EncodedObject("v1"); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Get("v1"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if ok, err := r.Exists("v1"); err != nil || !ok {
			t.Fatal("Exists failed")
		}
	}); n != 0 {
		t.Fatalf("Exists allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := r.EncodedObject("v1"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("EncodedObject allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Graph("da"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Graph allocates %v per op, want 0", n)
	}
}

// TestExistsReportsFailStop: a fail-stopped repository must be
// distinguishable from "not stored" — Exists returns the latched fatal
// error instead of a silent false.
func TestExistsReportsFailStop(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da", 1), true); err != nil {
		t.Fatal(err)
	}
	r.failStop(errors.New("injected disk failure"))
	if _, err := r.Exists("v1"); !errors.Is(err, ErrFatal) {
		t.Fatalf("Exists on fail-stopped repo: err = %v, want ErrFatal", err)
	}
	if _, err := r.Get("v1"); !errors.Is(err, ErrFatal) {
		t.Fatalf("Get on fail-stopped repo: err = %v, want ErrFatal", err)
	}
	if _, _, err := r.EncodedObject("v1"); !errors.Is(err, ErrFatal) {
		t.Fatalf("EncodedObject on fail-stopped repo: err = %v, want ErrFatal", err)
	}
}

// TestSerializedReadsAblation exercises the E15 baseline knob: reads behave
// identically (modulo cloning) with SerializedReads set.
func TestSerializedReadsAblation(t *testing.T) {
	cat := testCatalog(t)
	r, err := Open(cat, Options{SerializedReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da", 7), true); err != nil {
		t.Fatal(err)
	}
	a, err := r.Get("v1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Get("v1")
	if a == b {
		t.Fatal("serialized reads must clone (pre-MVCC checkout semantics)")
	}
	if catalog.NumAttr(a.Object, "area") != 7 {
		t.Fatalf("clone diverges: %+v", a)
	}
	if ok, err := r.Exists("v1"); err != nil || !ok {
		t.Fatal("Exists under serialized reads")
	}
	if _, _, err := r.EncodedObject("v1"); err != nil {
		t.Fatal(err)
	}
}
