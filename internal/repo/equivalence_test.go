// Package repo_test holds the checkpoint-equivalence property battery. It
// lives in the external test package so it can drive the repository with
// sim.OpMix histories (sim imports core, which imports repo — the internal
// test package would cycle).
package repo_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/repo"
	"concord/internal/sim"
	"concord/internal/version"
)

func equivCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if err := c.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func equivOpen(t *testing.T, dir string, opts repo.Options) *repo.Repository {
	t.Helper()
	opts.Dir = dir
	opts.Sync = true
	r, err := repo.Open(equivCatalog(t), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func equivDigest(t *testing.T, r *repo.Repository) string {
	t.Helper()
	d, err := r.StateDigest()
	if err != nil {
		t.Fatalf("StateDigest: %v", err)
	}
	return d
}

// TestCheckpointEquivalenceOpMix is the property battery of the incremental
// checkpoint design: for seeded sim.OpMix histories, an incremental twin
// (short chains, tiny segments, a crash injected at every catalogued
// checkpoint fault point) must recover to a state byte-identical to a
// quiescent-checkpoint twin that ran the same history without faults —
// right after the crash, and again at the end of the run.
func TestCheckpointEquivalenceOpMix(t *testing.T) {
	for _, point := range repo.CrashPoints {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", point, seed), func(t *testing.T) {
				testEquivalenceAt(t, point, seed)
			})
		}
	}
}

func testEquivalenceAt(t *testing.T, point string, seed int64) {
	const (
		nOps      = 160
		ckptEvery = 8
	)
	crash := errors.New("injected crash")
	reg := fault.New()
	dirA, dirB := t.TempDir(), t.TempDir()
	incOpts := repo.Options{SegmentBytes: 1 << 10, CheckpointMaxChain: 2, Faults: reg}
	a := equivOpen(t, dirA, incOpts)
	b := equivOpen(t, dirB, repo.Options{QuiescentCheckpoint: true})

	mix := sim.OpMix{Checkout: 2, Checkin: 5, Delegate: 1, HandOver: 1, SetStatus: 2, Seed: seed}
	rng := rand.New(rand.NewSource(seed * 977)) // op arguments, shared by both twins

	var ids []version.ID
	das := []string{"da0"}
	apply := func(op func(r *repo.Repository) error) {
		t.Helper()
		for _, r := range []*repo.Repository{a, b} {
			if err := op(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(func(r *repo.Repository) error { return r.CreateGraph("da0") })

	reg.ArmOnce(point, crash)
	crashed := false
	for i := 0; i < nOps; i++ {
		switch op := mix.Pick(); {
		case op == sim.OpCheckin || len(ids) == 0:
			id := version.ID(fmt.Sprintf("v%04d", len(ids)))
			da := das[rng.Intn(len(das))]
			root := len(ids) == 0 || rng.Intn(10) == 0
			var parents []version.ID
			if !root {
				parents = []version.ID{ids[rng.Intn(len(ids))]}
			}
			area := float64(rng.Intn(1000))
			apply(func(r *repo.Repository) error {
				obj := catalog.NewObject("floorplan").
					Set("cell", catalog.Str(string(id))).
					Set("area", catalog.Float(area))
				return r.Checkin(&version.DOV{
					ID: id, DOT: "floorplan", DA: da, Parents: parents,
					Object: obj, Status: version.StatusWorking,
				}, root)
			})
			ids = append(ids, id)
		case op == sim.OpCheckout:
			id := ids[rng.Intn(len(ids))]
			apply(func(r *repo.Repository) error { _, err := r.Get(id); return err })
		case op == sim.OpDelegate:
			da := fmt.Sprintf("da%d", len(das))
			das = append(das, da)
			apply(func(r *repo.Repository) error { return r.CreateGraph(da) })
		case op == sim.OpHandOver:
			key := fmt.Sprintf("handover/%d", rng.Intn(6))
			if rng.Intn(4) == 0 {
				apply(func(r *repo.Repository) error { return r.DeleteMeta(key) })
			} else {
				val := []byte(fmt.Sprintf("state-%d", i))
				apply(func(r *repo.Repository) error { return r.PutMeta(key, val) })
			}
		case op == sim.OpSetStatus:
			id := ids[rng.Intn(len(ids))]
			s := version.Status(1 + rng.Intn(3))
			apply(func(r *repo.Repository) error { return r.SetStatus(id, s) })
		}

		if (i+1)%ckptEvery == 0 {
			if err := b.Checkpoint(); err != nil {
				t.Fatalf("quiescent twin checkpoint: %v", err)
			}
			err := a.Checkpoint()
			switch {
			case err == nil:
			case errors.Is(err, crash) && !crashed:
				crashed = true
				// Process death: abandon the handle, recover from disk, and
				// prove recovery equals the quiescent twin immediately.
				a = equivOpen(t, dirA, incOpts)
				if got, want := equivDigest(t, a), equivDigest(t, b); got != want {
					t.Fatalf("crash at %s: recovered digest differs from quiescent twin:\n--- quiescent\n%s--- recovered\n%s", point, want, got)
				}
			default:
				t.Fatalf("incremental twin checkpoint: %v", err)
			}
		}
	}
	if !crashed {
		t.Fatalf("fault point %s never fired (hits=%d) — the scenario proved nothing", point, reg.Hits(point))
	}
	// Final recovery equivalence across one more crash/restart of both twins.
	a2 := equivOpen(t, dirA, repo.Options{SegmentBytes: 1 << 10})
	b2 := equivOpen(t, dirB, repo.Options{})
	if err := a2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got, want := equivDigest(t, a2), equivDigest(t, b2); got != want {
		t.Fatalf("crash at %s: final digest differs from quiescent twin:\n--- quiescent\n%s--- incremental\n%s", point, want, got)
	}
}
