package repo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"concord/internal/version"
)

// TestConcurrentCheckinsAcrossGraphs hammers the repository from many
// goroutines: per-DA graphs must stay consistent and the WAL must record
// every committed version. Writers also derive from other DAs' committed
// versions and flip statuses mid-flight, exercising the sharded write path's
// cross-DA parent checks (§3.7).
func TestConcurrentCheckinsAcrossGraphs(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir)
	const das = 4
	const perDA = 25
	for i := 0; i < das; i++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// lastOf publishes each writer's most recent committed version so the
	// next DA over can use it as a cross-DA parent.
	var lastOf [das]atomic.Value
	var wg sync.WaitGroup
	errs := make(chan error, das)
	for i := 0; i < das; i++ {
		wg.Add(1)
		go func(da int) {
			defer wg.Done()
			name := fmt.Sprintf("da%d", da)
			var prev version.ID
			for j := 0; j < perDA; j++ {
				id := version.ID(fmt.Sprintf("%s/v%d", name, j))
				v := mkDOV(string(id), name, float64(j))
				if prev != "" {
					v.Parents = []version.ID{prev}
					if x := lastOf[(da+1)%das].Load(); x != nil && j%3 == 0 {
						if p := x.(version.ID); p != prev {
							v.Parents = append(v.Parents, p)
						}
					}
				}
				if err := r.Checkin(v, prev == ""); err != nil {
					errs <- err
					return
				}
				lastOf[da].Store(id)
				if j%5 == 0 {
					if err := r.SetStatus(id, version.StatusPropagated); err != nil {
						errs <- err
						return
					}
				}
				// Interleave metadata writes (manager context traffic).
				if err := r.PutMeta(fmt.Sprintf("m/%s/%d", name, j), []byte{byte(j)}); err != nil {
					errs <- err
					return
				}
				prev = id
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.DOVCount() != das*perDA {
		t.Fatalf("count = %d, want %d", r.DOVCount(), das*perDA)
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Recovery sees exactly the same state.
	r.Close()
	r2, err := Open(r.Catalog(), Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.DOVCount() != das*perDA {
		t.Fatalf("recovered count = %d", r2.DOVCount())
	}
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < das; i++ {
		g, err := r2.Graph(fmt.Sprintf("da%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != perDA {
			t.Fatalf("graph da%d len = %d", i, g.Len())
		}
		if len(g.Leaves()) != 1 {
			t.Fatalf("graph da%d leaves = %d, want 1 (chain)", i, len(g.Leaves()))
		}
	}
}
