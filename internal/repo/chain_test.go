package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapFiles lists the chain payload files currently on disk.
func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if isSnapPayloadName(e.Name()) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestIncrementalChainAndRebase pins the chain lifecycle: the first
// checkpoint is a full rebase, later ones append incremental deltas, the
// configured bound forces a rebase that garbage-collects the superseded
// chain, and recovery folds every shape back to the identical state.
func TestIncrementalChainAndRebase(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 4 << 10, CheckpointMaxChain: 3}
	r := openRepoOpts(t, dir, opts)

	churn(t, r, "a-", 6, 40)
	wantChain := []int{1, 2, 3, 1, 2} // full, +inc, +inc, rebase, +inc
	for step, want := range wantChain {
		if err := r.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", step, err)
		}
		if got, _ := r.SnapshotChain(); got != want {
			t.Fatalf("checkpoint %d: chain length = %d, want %d", step, got, want)
		}
		// Disk carries exactly the live chain (GC on rebase).
		if files := snapFiles(t, dir); len(files) != want {
			t.Fatalf("checkpoint %d: %d payload files on disk (%v), want %d", step, len(files), files, want)
		}
		// Every shape must recover to the identical state.
		want := digest(t, r)
		r2 := openRepoOpts(t, dir, opts)
		if got := digest(t, r2); got != want {
			t.Fatalf("checkpoint %d: chain recovery differs:\n--- want\n%s--- got\n%s", step, want, got)
		}
		r2.Close()
		// More history so the next checkpoint has a dirty cut.
		churn(t, r, fmt.Sprintf("s%d-", step), 2, 10)
	}
}

// TestIncrementalCheckpointSkipsCleanShards asserts the delta actually is a
// delta: after a full checkpoint, an update touching one DOV produces an
// incremental payload far smaller than the base.
func TestIncrementalCheckpointSkipsCleanShards(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{})
	churn(t, r, "a-", 64, 0)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, baseBytes := r.SnapshotChain()
	if err := r.SetStatus("a-v000", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, chainBytes := r.SnapshotChain()
	inc := chainBytes - baseBytes
	if inc <= 0 || inc >= baseBytes/4 {
		t.Fatalf("one-DOV delta = %d bytes against a %d-byte base: not incremental", inc, baseBytes)
	}
}

// TestTornManifestTailRecovers appends garbage to the manifest (a torn or
// corrupted append) and asserts recovery keeps the valid prefix and loses
// nothing: the WAL mark only ever covers fsync-durable entries, so the
// garbage can only be an entry the mark does not depend on.
func TestTornManifestTailRecovers(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	churn(t, r, "a-", 6, 60)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	churn(t, r, "b-", 2, 20)
	if err := r.Checkpoint(); err != nil { // incremental: manifest has 2 entries
		t.Fatal(err)
	}
	if n, _ := r.SnapshotChain(); n != 2 {
		t.Fatalf("chain length = %d, want 2", n)
	}
	want := digest(t, r)
	r.Close()

	mf := filepath.Join(dir, manifestName)
	f, err := os.OpenFile(mf, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xA5, 0xA5, 0xA5, 0xA5, 0xA5, 0x00, 0xFF, 0x17, 0x2A}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := digest(t, r2); got != want {
		t.Fatalf("torn manifest tail lost state:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestOpenRejectsMarkBeyondChain is the data-loss refusal: if the manifest
// (and with it the chain's coverage) disappears while the WAL mark has
// advanced, records below the mark are unrecoverable and Open must refuse
// rather than serve a silently truncated history.
func TestOpenRejectsMarkBeyondChain(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	churn(t, r, "a-", 6, 60)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, SegmentBytes: 4 << 10})
	if err == nil || !strings.Contains(err.Error(), "beyond snapshot chain coverage") {
		t.Fatalf("Open with deleted manifest = %v, want mark-beyond-coverage refusal", err)
	}
}

// TestLegacySnapshotLoads keeps the pre-chain on-disk format readable: a
// single CCSNAP01 file named "snapshot" (no manifest) loads as a one-element
// chain, and the next checkpoint migrates it to the manifest scheme.
func TestLegacySnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	churn(t, r, "a-", 6, 60)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := digest(t, r)
	files := snapFiles(t, dir)
	if len(files) != 1 || !strings.HasSuffix(files[0], ".base") {
		t.Fatalf("payload files = %v, want one base", files)
	}
	r.Close()
	// Devolve the directory to the pre-chain layout.
	if err := os.Rename(filepath.Join(dir, files[0]), filepath.Join(dir, legacySnapName)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	if got := digest(t, r2); got != want {
		t.Fatalf("legacy snapshot recovery differs:\n--- want\n%s--- got\n%s", want, got)
	}
	// A checkpoint migrates to the manifest scheme and drops the legacy file.
	churn(t, r2, "b-", 2, 10)
	if err := r2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, legacySnapName)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot still present after migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing after migration: %v", err)
	}
}

// TestQuiescentCheckpointAblation pins the E19 baseline: with
// QuiescentCheckpoint every checkpoint is a full snapshot encoded under the
// exclusive lock, and recovery is byte-identical to the incremental design.
func TestQuiescentCheckpointAblation(t *testing.T) {
	dirQ, dirI := t.TempDir(), t.TempDir()
	q := openRepoOpts(t, dirQ, Options{SegmentBytes: 4 << 10, QuiescentCheckpoint: true})
	in := openRepoOpts(t, dirI, Options{SegmentBytes: 4 << 10, CheckpointMaxChain: 2})
	for round := 0; round < 4; round++ {
		tag := fmt.Sprintf("r%d-", round)
		churn(t, q, tag, 4, 20)
		churn(t, in, tag, 4, 20)
		if err := q.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := in.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if n, _ := q.SnapshotChain(); n != 1 {
			t.Fatalf("quiescent chain length = %d, want always 1", n)
		}
	}
	q.Close()
	in.Close()
	q2 := openRepoOpts(t, dirQ, Options{})
	in2 := openRepoOpts(t, dirI, Options{})
	if dq, di := digest(t, q2), digest(t, in2); dq != di {
		t.Fatalf("quiescent and incremental recovery digests differ:\n--- quiescent\n%s--- incremental\n%s", dq, di)
	}
}
