package repo

import "os"

// tempDir and cleanDir wrap os temp-dir handling for property tests that run
// outside testing.T cleanup scopes.
func tempDir() (string, error) { return os.MkdirTemp("", "concord-repo") }

func cleanDir(dir string) { os.RemoveAll(dir) }
