package repo

import (
	"fmt"
	"sort"
	"strings"

	"concord/internal/catalog"
	"concord/internal/version"
)

// StateDigest renders the complete durable repository state
// deterministically: sequence counter, derivation graph structure per DA,
// DOV set (payload bytes included) and metadata store. Two repositories
// with equal digests are byte-identical as far as recovery is concerned —
// the scenario harness's byte-identical-recovery and twin-replay oracles
// compare digests taken before a crash and after the restarted twin
// recovers, and the checkpoint-equivalence battery (§3.8) compares an
// incrementally checkpointed repository recovered at every catalogued
// crash point against its quiescent twin. The repository is quiesced
// (writers excluded) for the duration of the call.
func (r *Repository) StateDigest() (string, error) {
	var b strings.Builder
	// Quiesce writers (exclusive side of the §3.7 lock order) for a stable
	// cut across the sharded index, DA directory and metadata store.
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&b, "seq=%d\n", r.seq.Load())
	das := *r.dasPub.Load()
	names := make([]string, 0, len(das))
	for da := range das {
		names = append(names, da)
	}
	sort.Strings(names)
	for _, da := range names {
		g := das[da].g
		fmt.Fprintf(&b, "graph %s:", da)
		for _, id := range g.IDs() {
			fmt.Fprintf(&b, " %s>[%s]", id, joinIDStrings(g.Children(id)))
		}
		b.WriteByte('\n')
	}
	entries := make(map[version.ID]*dovEntry)
	r.idx.each(func(id version.ID, e *dovEntry) { entries[id] = e })
	ids := make([]string, 0, len(entries))
	for id := range entries {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := entries[version.ID(id)]
		v := e.dov
		obj, err := catalog.EncodeObject(v.Object)
		if err != nil {
			return "", fmt.Errorf("repo: digest encode %s: %w", id, err)
		}
		fmt.Fprintf(&b, "dov %s dot=%s da=%s parents=[%s] status=%d seq=%d root=%t obj=%x\n",
			v.ID, v.DOT, v.DA, joinIDStrings(v.Parents), v.Status, v.Seq, e.root, obj)
	}
	r.metaMu.Lock()
	keys := make([]string, 0, len(r.meta))
	for k := range r.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "meta %s=%x\n", k, r.meta[k])
	}
	r.metaMu.Unlock()
	return b.String(), nil
}

// joinIDStrings joins version IDs with commas for digest rendering.
func joinIDStrings(ids []version.ID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	return strings.Join(ss, ",")
}
