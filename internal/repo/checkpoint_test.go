package repo

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"concord/internal/fault"
	"concord/internal/version"
)

// digest wraps the exported StateDigest (the scenario harness's recovery
// oracle) with test plumbing: two repositories with equal digests are
// byte-identical as far as recovery is concerned.
func digest(t *testing.T, r *Repository) string {
	t.Helper()
	d, err := r.StateDigest()
	if err != nil {
		t.Fatalf("StateDigest: %v", err)
	}
	return d
}

// churn runs a deterministic update-heavy workload: a few live DOVs, then
// rounds of status flips and metadata overwrites — history that grows the
// log without growing live state.
func churn(t *testing.T, r *Repository, tag string, dovs, rounds int) {
	t.Helper()
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dovs; i++ {
		v := mkDOV(fmt.Sprintf("%sv%03d", tag, i), "da", float64(100+i))
		if i > 0 {
			v.Parents = []version.ID{version.ID(fmt.Sprintf("%sv%03d", tag, i-1))}
		}
		if err := r.Checkin(v, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	statuses := []version.Status{version.StatusWorking, version.StatusPropagated, version.StatusFinal}
	for i := 0; i < rounds; i++ {
		id := version.ID(fmt.Sprintf("%sv%03d", tag, i%dovs))
		if err := r.SetStatus(id, statuses[i%len(statuses)]); err != nil {
			t.Fatal(err)
		}
		if err := r.PutMeta(fmt.Sprintf("hot/%d", i%4), []byte(fmt.Sprintf("round-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// crashCheckpointAt drives checkpoints (forcing a little log growth before
// each attempt) until the armed point delivers its error. The first
// checkpoint after Open is always a full rebase, so the incremental-only
// points (CrashInc*) fire on the second attempt, which runs the delta path.
func crashCheckpointAt(t *testing.T, r *Repository, reg *fault.Registry, point string, crash error) {
	t.Helper()
	reg.Arm(point, crash)
	var err error
	for try := 0; try < 8 && err == nil; try++ {
		if perr := r.PutMeta("ckpt/poke", []byte{byte(try)}); perr != nil {
			t.Fatal(perr)
		}
		err = r.Checkpoint()
	}
	if !errors.Is(err, crash) {
		t.Fatalf("Checkpoint with crash at %s = %v, want injected crash", point, err)
	}
}

func openRepoOpts(t *testing.T, dir string, opts Options) *Repository {
	t.Helper()
	opts.Dir = dir
	opts.Sync = true
	r, err := Open(testCatalog(t), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestCheckpointBoundsDiskAndReplay is the acceptance check: after N
// operations and a checkpoint, both the on-disk log and the replay work of a
// restart are bounded by live state, not by N.
func TestCheckpointBoundsDiskAndReplay(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	churn(t, r, "a-", 8, 400)
	before := r.DiskLogBytes()
	want := digest(t, r)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := r.DiskLogBytes()
	if after >= before/4 {
		t.Fatalf("disk bytes %d -> %d: checkpoint did not compact the churn history", before, after)
	}
	// Replay work after the checkpoint is the suffix only.
	if grew := r.LogSize() - int64(r.LowWater()); grew != 0 {
		t.Fatalf("replay suffix = %d bytes right after checkpoint", grew)
	}
	r.Close()

	r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	if err := r2.CheckConsistency(); err != nil {
		t.Fatalf("consistency after snapshot recovery: %v", err)
	}
	if got := digest(t, r2); got != want {
		t.Fatalf("state after snapshot+suffix recovery differs:\n--- want\n%s--- got\n%s", want, got)
	}
	// Work continues and a further checkpoint still compacts.
	churn(t, r2, "b-", 8, 50)
	if err := r2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCrashPoints exercises a simulated crash at every step of the
// checkpoint protocol — mid-snapshot write, before/after the snapshot
// rename, before/after the log-mark install, before/after segment deletion —
// and asserts recovery loses nothing durable at any of them.
func TestCheckpointCrashPoints(t *testing.T) {
	for _, point := range CrashPoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crash := errors.New("injected crash")
			reg := fault.New()
			r, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, SegmentBytes: 4 << 10, Faults: reg})
			if err != nil {
				t.Fatal(err)
			}
			churn(t, r, "a-", 8, 200)
			crashCheckpointAt(t, r, reg, point, crash)
			want := digest(t, r)
			// The process dies here: abandon r without Close and recover
			// from the directory alone.
			r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
			if err := r2.CheckConsistency(); err != nil {
				t.Fatalf("crash at %s: consistency: %v", point, err)
			}
			// Mark-semantics invariant: segment reclamation never outruns
			// what the surviving snapshot chain covers.
			if lw := r2.LowWater(); lw > r2.SnapshotLSN() {
				t.Fatalf("crash at %s: low-water mark %d beyond chain coverage %d", point, lw, r2.SnapshotLSN())
			}
			if got := digest(t, r2); got != want {
				t.Fatalf("crash at %s lost durable state:\n--- want\n%s--- got\n%s", point, want, got)
			}
			// The repository keeps working and the interrupted checkpoint
			// can be completed.
			churn(t, r2, "b-", 8, 20)
			if err := r2.Checkpoint(); err != nil {
				t.Fatalf("re-checkpoint after crash at %s: %v", point, err)
			}
			want2 := digest(t, r2)
			r2.Close()
			r3 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
			if got := digest(t, r3); got != want2 {
				t.Fatalf("crash at %s: post-recovery checkpoint diverged", point)
			}
		})
	}
}

// TestRecoveryEquivalenceRandom is the property test: a random workload runs
// against twin repositories; one checkpoints at a random point (and crashes
// mid-life), the other never checkpoints. The state recovered via
// snapshot+suffix must be byte-identical to the state rebuilt by full replay
// of the uncheckpointed twin.
func TestRecoveryEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dirA, dirB := t.TempDir(), t.TempDir()
			a := openRepoOpts(t, dirA, Options{SegmentBytes: 2 << 10})
			b := openRepoOpts(t, dirB, Options{})

			nOps := 60 + rng.Intn(120)
			ckptAt := rng.Intn(nOps)
			var ids []version.ID
			apply := func(op func(r *Repository) error) {
				t.Helper()
				for _, r := range []*Repository{a, b} {
					if err := op(r); err != nil {
						t.Fatal(err)
					}
				}
			}
			apply(func(r *Repository) error { return r.CreateGraph("da") })
			for i := 0; i < nOps; i++ {
				if i == ckptAt {
					if err := a.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				switch k := rng.Intn(10); {
				case k < 4 || len(ids) == 0: // checkin
					id := version.ID(fmt.Sprintf("v%04d", len(ids)))
					var parents []version.ID
					root := len(ids) == 0 || rng.Intn(8) == 0
					if !root {
						parents = []version.ID{ids[rng.Intn(len(ids))]}
						if rng.Intn(3) == 0 {
							p2 := ids[rng.Intn(len(ids))]
							if p2 != parents[0] {
								parents = append(parents, p2)
							}
						}
					}
					area := float64(rng.Intn(1000))
					apply(func(r *Repository) error {
						v := mkDOV(string(id), "da", area, parents...)
						return r.Checkin(v, root)
					})
					ids = append(ids, id)
				case k < 6: // status flip
					id := ids[rng.Intn(len(ids))]
					s := version.Status(1 + rng.Intn(4))
					apply(func(r *Repository) error { return r.SetStatus(id, s) })
				case k < 9: // metadata overwrite
					key := fmt.Sprintf("meta/%d", rng.Intn(6))
					val := []byte(fmt.Sprintf("val-%d", rng.Intn(1000)))
					apply(func(r *Repository) error { return r.PutMeta(key, val) })
				default: // metadata delete
					key := fmt.Sprintf("meta/%d", rng.Intn(6))
					apply(func(r *Repository) error { return r.DeleteMeta(key) })
				}
			}
			// Crash both twins (no Close: Sync=true made every op durable).
			a2 := openRepoOpts(t, dirA, Options{SegmentBytes: 2 << 10})
			b2 := openRepoOpts(t, dirB, Options{})
			if err := a2.CheckConsistency(); err != nil {
				t.Fatalf("checkpointed twin: %v", err)
			}
			if err := b2.CheckConsistency(); err != nil {
				t.Fatalf("full-replay twin: %v", err)
			}
			got, want := digest(t, a2), digest(t, b2)
			if got != want {
				t.Fatalf("snapshot+suffix recovery differs from full replay:\n--- full replay\n%s--- snapshot+suffix\n%s", want, got)
			}
		})
	}
}

// TestCheckpointConcurrentWithCheckins races checkpoints against live
// checkin traffic: every committed version must survive the restart.
func TestCheckpointConcurrentWithCheckins(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	const writers, per = 4, 30
	for w := 0; w < writers; w++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			da := fmt.Sprintf("da%d", w)
			for i := 0; i < per; i++ {
				v := mkDOV(fmt.Sprintf("%s-v%03d", da, i), da, float64(i))
				if i > 0 {
					v.Parents = []version.ID{version.ID(fmt.Sprintf("%s-v%03d", da, i-1))}
				}
				if err := r.Checkin(v, i == 0); err != nil {
					t.Errorf("checkin: %v", err)
					return
				}
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for r.DOVCount() < writers*per {
			if err := r.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-ckptDone
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := digest(t, r)
	r.Close()
	r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
	if r2.DOVCount() != writers*per {
		t.Fatalf("recovered %d DOVs, want %d", r2.DOVCount(), writers*per)
	}
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := digest(t, r2); got != want {
		t.Fatal("state after concurrent checkpointing differs after restart")
	}
}
