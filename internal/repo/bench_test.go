package repo

import (
	"fmt"
	"sync"
	"testing"

	"concord/internal/catalog"
	"concord/internal/version"
)

func benchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	c := catalog.New()
	if err := c.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat},
		},
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkRestartAfterChurn measures repo.Open after an update-heavy
// history: a fixed set of live DOVs churned by thousands of status and
// metadata updates. With a checkpoint the restart replays O(live state)
// (snapshot + empty suffix); without one it replays the O(history) log —
// the pair quantifies what the checkpoint subsystem buys (E13).
func BenchmarkRestartAfterChurn(b *testing.B) {
	const dovs, churnOps = 16, 20000
	for _, ckpt := range []bool{false, true} {
		name := "full-replay"
		if ckpt {
			name = "checkpointed"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			cat := benchCatalog(b)
			opts := Options{Dir: dir, SegmentBytes: 64 << 10}
			r, err := Open(cat, opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.CreateGraph("da"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < dovs; i++ {
				obj := catalog.NewObject("floorplan").
					Set("cell", catalog.Str("c")).
					Set("area", catalog.Float(float64(i)))
				v := &version.DOV{
					ID: version.ID(fmt.Sprintf("v%03d", i)), DOT: "floorplan", DA: "da",
					Object: obj, Status: version.StatusWorking,
				}
				if i > 0 {
					v.Parents = []version.ID{version.ID(fmt.Sprintf("v%03d", i-1))}
				}
				if err := r.Checkin(v, i == 0); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < churnOps; i++ {
				id := version.ID(fmt.Sprintf("v%03d", i%dovs))
				if err := r.SetStatus(id, version.Status(1+i%3)); err != nil {
					b.Fatal(err)
				}
				if err := r.PutMeta(fmt.Sprintf("hot/%d", i%8), []byte(fmt.Sprintf("r%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			if ckpt {
				if err := r.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			disk := r.DiskLogBytes()
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(disk)/1024, "disk-KiB")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r2, err := Open(cat, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if r2.DOVCount() != dovs {
					b.Fatalf("recovered %d DOVs, want %d", r2.DOVCount(), dovs)
				}
				r2.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkCheckinParallelDAs measures aggregate checkin cost with one
// writer goroutine per DA, comparing the SerializedWrites baseline (global
// lock held across the forced write) with the §3.7 sharded pipeline
// (per-DA locks + group commit). The E16 experiment reports the full
// throughput curve; this keeps the write path under `make bench`.
func BenchmarkCheckinParallelDAs(b *testing.B) {
	const writers = 8
	for _, serialized := range []bool{true, false} {
		name := "sharded"
		if serialized {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			cat := benchCatalog(b)
			r, err := Open(cat, Options{Dir: dir, Sync: true, SerializedWrites: serialized})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			for w := 0; w < writers; w++ {
				if err := r.CreateGraph(fmt.Sprintf("da%d", w)); err != nil {
					b.Fatal(err)
				}
			}
			var round int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						obj := catalog.NewObject("floorplan").
							Set("cell", catalog.Str("c")).
							Set("area", catalog.Float(float64(round)))
						v := &version.DOV{
							ID:  version.ID(fmt.Sprintf("da%d/v%08d", w, round)),
							DOT: "floorplan", DA: fmt.Sprintf("da%d", w),
							Object: obj, Status: version.StatusWorking,
						}
						if err := r.Checkin(v, true); err != nil {
							b.Error(err)
						}
					}(w)
				}
				wg.Wait()
				round++
			}
			b.ReportMetric(float64(b.N*writers), "checkins")
		})
	}
}
