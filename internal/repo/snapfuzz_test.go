package repo

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedCorpus builds a real chained checkpoint and returns the raw bytes
// of its manifest and payload files — genuine CCSNAP01/CCINCR01/manifest
// framings as seeds, so the fuzzer starts from the valid format rather than
// discovering the magic by brute force.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := f.TempDir()
	r, err := Open(testCatalog(f), Options{Dir: dir, Sync: true, SegmentBytes: 4 << 10, CheckpointMaxChain: 4})
	if err != nil {
		f.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da"); err != nil {
		f.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		v := mkDOV(string(rune('a'+round))+"-v0", "da", float64(round))
		if err := r.Checkin(v, true); err != nil {
			f.Fatal(err)
		}
		if err := r.PutMeta("k", []byte{byte(round)}); err != nil {
			f.Fatal(err)
		}
		if err := r.Checkpoint(); err != nil {
			f.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	var corpus [][]byte
	for _, e := range ents {
		n := e.Name()
		if n != manifestName && !isSnapPayloadName(n) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			f.Fatal(err)
		}
		corpus = append(corpus, data)
	}
	if len(corpus) < 3 { // manifest + base + at least one inc
		f.Fatalf("seed corpus has %d files, want manifest+base+inc", len(corpus))
	}
	return corpus
}

// FuzzSnapshotDecode throws arbitrary bytes at every decoder on the recovery
// path: the manifest parser and both payload decoders must never panic, the
// manifest parser must be a projection (parse∘encode∘parse = parse — valid
// prefixes of corrupted inputs reparse identically), and payloads that pass
// the CRC must decode deterministically.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
		if len(seed) > 8 {
			f.Add(seed[:len(seed)/2])                     // torn tail
			f.Add(append(bytes.Clone(seed), seed[:8]...)) // trailing garbage
			mut := bytes.Clone(seed)
			mut[len(mut)/3] ^= 0x40 // bit rot
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("CCSNAP01"))
	f.Add([]byte("CCINCR01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Manifest: never panics, and parsing is idempotent on its own output.
		entries, epoch := parseManifest(data)
		re, _ := parseManifest(encodeManifest(entries))
		if len(re) != len(entries) {
			t.Fatalf("manifest reparse kept %d of %d entries", len(re), len(entries))
		}
		for i := range entries {
			if re[i] != entries[i] {
				t.Fatalf("manifest entry %d changed across reparse: %+v != %+v", i, re[i], entries[i])
			}
		}
		// Epoch entries survive a rebase-style re-encode alongside the chain.
		if epoch > 0 {
			re2, ep2 := parseManifest(encodeManifest(append([]manifestEntry{epochEntry(epoch)}, entries...)))
			if ep2 != epoch || len(re2) != len(entries) {
				t.Fatalf("epoch %d + %d entries re-encoded to epoch %d + %d entries", epoch, len(entries), ep2, len(re2))
			}
		}
		// Payloads: never panic; CRC-valid inputs decode the same way twice.
		payload, err := checkCRC(data)
		if err != nil {
			return
		}
		if b1, err := decodeBasePayload(payload); err == nil {
			b2, err := decodeBasePayload(payload)
			if err != nil || b1.snapLSN != b2.snapLSN || b1.seq != b2.seq || len(b1.recs) != len(b2.recs) {
				t.Fatalf("base payload decode not deterministic: %v", err)
			}
		}
		if s1, err := decodeIncPayload(payload); err == nil {
			s2, err := decodeIncPayload(payload)
			if err != nil || s1.snapLSN != s2.snapLSN || s1.prevLSN != s2.prevLSN || len(s1.shards) != len(s2.shards) {
				t.Fatalf("inc payload decode not deterministic: %v", err)
			}
		}
	})
}
