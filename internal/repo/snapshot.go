package repo

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/wal"
)

// Checkpointing (DESIGN.md §3.5, §3.8): the repository bounds restart time
// and log disk usage by periodically capturing its state in snapshot files,
// then telling the segmented WAL to drop the covered prefix. Since PR 8 the
// capture is non-quiescent and incremental:
//
//  1. Cut. Holding the quiesce lock exclusively for microseconds only, the
//     checkpointer notes the log position L (= log.Size()), captures the 64
//     published shard pointers of the copy-on-write MVCC index plus their
//     dirty generations, the DA directory, and a shallow copy of the
//     metadata store. Mutators hold the quiesce lock shared for the span
//     [WAL reservation, publication] (§3.7), so the captured pointers are
//     exactly the effect of all records below L; and because published
//     records and shard maps are immutable (mvcc.go), the cut stays frozen
//     while writers proceed — encoding happens entirely off-lock.
//  2. Encode + install. A *full* checkpoint writes every shard to
//     snap-<L>.base and atomically rewrites the manifest to reference it. An
//     *incremental* checkpoint writes only the shards whose generation moved
//     since the previous checkpoint to snap-<L>.inc and appends one entry to
//     the manifest. Either way the payload file is fsynced (file + dirent)
//     strictly before the manifest references it.
//  3. wal.Checkpoint(L): durably mark L as the log's low-water mark, then
//     delete the segments lying entirely below it. The manifest entry
//     covering L is fsync-durable first (step 2), so the mark never exceeds
//     surviving chain coverage — the invariant segment deletion relies on.
//
// Recovery folds the manifest chain (base + incremental deltas, per-shard
// replacement; manifest.go) and replays the log suffix from the chain's
// coverage LSN. A crash at any step loses nothing: payload files are
// uniquely named and unreferenced until the manifest points at them, the
// manifest rebase is an atomic rename, the incremental append is a single
// fsynced frame whose torn tail parses as a shorter valid prefix, and the
// log mark only moves after the covering entry is durable.
//
// Chains are rebased (full checkpoint) when they grow past
// Options.CheckpointMaxChain elements or CheckpointMaxChainBytes payload
// bytes, and always on the first checkpoint after Open (dirty generations
// are volatile). Options.QuiescentCheckpoint restores the pre-PR-8
// stop-the-world behaviour — encode under the exclusive lock, full snapshot
// every time — as the E19 ablation baseline.
const (
	legacySnapName = "snapshot"
	snapTmpName    = "snapshot.tmp"
	snapMagic      = "CCSNAP01"
	incMagic       = "CCINCR01"
)

// Default rebase thresholds (Options.CheckpointMaxChain{,Bytes}).
const (
	DefaultCheckpointMaxChain      = 8
	DefaultCheckpointMaxChainBytes = 256 << 20
)

// Crash points traversed on Options.Faults during Checkpoint, in protocol
// order (the wal.Crash* points fire inside wal.Checkpoint).
const (
	// CrashSnapshotPartial fires halfway through writing a full snapshot's
	// payload file.
	CrashSnapshotPartial = "repo:snapshot-partial"
	// CrashSnapshotWritten fires after the full payload file is written and
	// synced, before the manifest references it.
	CrashSnapshotWritten = "repo:snapshot-written"
	// CrashManifestTmp fires after the rebased manifest tmp is written and
	// synced, before the rename installs it.
	CrashManifestTmp = "repo:manifest-tmp"
	// CrashSnapshotInstalled fires after the manifest rebase rename, before
	// the WAL low-water mark is moved.
	CrashSnapshotInstalled = "repo:snapshot-installed"
	// CrashIncPartial fires halfway through writing an incremental delta
	// file.
	CrashIncPartial = "repo:inc-delta-partial"
	// CrashIncWritten fires after the delta file is written and synced,
	// before its manifest entry is appended.
	CrashIncWritten = "repo:inc-delta-written"
	// CrashIncAppended fires after the delta's manifest entry is appended
	// and synced, before the WAL low-water mark is moved.
	CrashIncAppended = "repo:inc-manifest-appended"
	// CrashSnapGC fires after a full checkpoint committed (mark moved),
	// before unreferenced snapshot files of the superseded chain are
	// removed.
	CrashSnapGC = "repo:snap-gc"
)

// CrashPoints lists every step of the checkpoint protocol a fault point can
// target: the full-rebase steps, the incremental-delta steps, the wal mark
// steps (traversed by both paths), then the post-commit GC. The
// fault-injection harness iterates it so no step goes unexercised.
var CrashPoints = []string{
	CrashSnapshotPartial,
	CrashSnapshotWritten,
	CrashManifestTmp,
	CrashSnapshotInstalled,
	CrashIncPartial,
	CrashIncWritten,
	CrashIncAppended,
	wal.CrashBeforeMark,
	wal.CrashMarkTmp,
	wal.CrashMarkInstalled,
	wal.CrashSegmentDeleted,
	CrashSnapGC,
}

// ckptGens is the dirty-mark vector captured at a cut: one publication
// generation per index shard plus the metadata store's. A checkpoint records
// the vector it captured; the next incremental emits exactly the components
// that moved.
type ckptGens struct {
	shards [idxShards]uint64
	meta   uint64
}

// snapCut is a consistent copy-on-write cut of the repository at snapLSN:
// frozen shard maps (nil for shards clean since the previous checkpoint on
// the incremental path), the DA directory, a shallow metadata copy (nil when
// clean), and the generation vector the cut was taken at.
type snapCut struct {
	full    bool
	snapLSN wal.LSN
	prevLSN wal.LSN
	seq     uint64
	daNames []string
	shards  [idxShards]*map[version.ID]*dovEntry
	meta    map[string][]byte
	gens    ckptGens
}

// captureCutLocked takes the cut. Caller holds the quiesce lock exclusively
// (this is the entire stall a checkpoint imposes on writers) and ckptMu.
// Returns nil when the log has not grown since the last checkpoint.
func (r *Repository) captureCutLocked(full bool) *snapCut {
	snapLSN := wal.LSN(r.log.Size())
	if snapLSN <= r.snapLSN {
		return nil
	}
	last := r.lastGens
	if last == nil {
		full = true // dirty marks are volatile: nothing to diff against
	}
	c := &snapCut{full: full, snapLSN: snapLSN, prevLSN: r.snapLSN, seq: r.seq.Load()}
	das := *r.dasPub.Load()
	for da := range das {
		c.daNames = append(c.daNames, da)
	}
	sort.Strings(c.daNames)
	for i := range r.idx.shards {
		s := &r.idx.shards[i]
		c.gens.shards[i] = s.gen
		if full || s.gen != last.shards[i] {
			c.shards[i] = s.p.Load()
		}
	}
	r.metaMu.Lock()
	c.gens.meta = r.metaGen
	if full || r.metaGen != last.meta {
		m := make(map[string][]byte, len(r.meta))
		for k, v := range r.meta {
			m[k] = v // values are immutable (PutMeta stores a private copy)
		}
		c.meta = m
	}
	r.metaMu.Unlock()
	return c
}

// Checkpoint captures the repository state and compacts the redo log behind
// it. Concurrent mutators are blocked only for the pointer-capture cut
// (microseconds), never while state is encoded or written out — except under
// the QuiescentCheckpoint ablation, which encodes the full state inside the
// exclusive section to reproduce the historical stall. Safe to call
// concurrently; checkpoints are serialized and monotonic.
func (r *Repository) Checkpoint() error {
	if r.log == nil {
		return nil // volatile repository: nothing to compact
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()

	full := r.quiescentCkpt || r.lastGens == nil ||
		len(r.chain) >= r.maxChain || r.chainBytes >= r.maxChainBytes

	start := time.Now()
	r.mu.Lock()
	// writable, not alive: a degraded repository must not advance the
	// checkpoint mark — its in-memory state may be ahead of the durable
	// log, and the disk is refusing writes anyway.
	if err := r.writable(); err != nil {
		r.mu.Unlock()
		return err
	}
	cut := r.captureCutLocked(full)
	var payload []byte
	var encErr error
	if r.quiescentCkpt && cut != nil {
		payload, encErr = encodeBaseCut(cut)
	}
	r.mu.Unlock()
	r.notePause(time.Since(start))
	if cut == nil {
		return nil
	}
	if encErr != nil {
		return encErr
	}
	if payload == nil {
		var err error
		if cut.full {
			payload, err = encodeBaseCut(cut)
		} else {
			payload, err = encodeIncCut(cut)
		}
		if err != nil {
			return err
		}
	}
	var err error
	if cut.full {
		err = r.installBase(cut, payload)
	} else {
		err = r.installIncremental(cut, payload)
	}
	if err != nil {
		// The protocol may have stopped after a durable step (delta file on
		// disk, manifest entry appended) without committing in-memory chain
		// state. Force the next checkpoint to rebase: a full rewrite of the
		// manifest re-establishes every invariant regardless of where the
		// previous attempt died.
		r.lastGens = nil
		return err
	}
	return nil
}

// installBase runs the full-rebase install protocol: payload file, manifest
// rewrite, log mark, GC of the superseded chain.
func (r *Repository) installBase(cut *snapCut, payload []byte) error {
	entry := manifestEntry{kind: manifestKindBase, file: snapFileName(cut.snapLSN, true), lsn: cut.snapLSN}
	if err := r.writeSnapFile(entry.file, payload, CrashSnapshotPartial); err != nil {
		return err
	}
	if err := r.hookAt(CrashSnapshotWritten); err != nil {
		return err
	}
	// A rebase rewrites the whole manifest, so the replication epoch entry
	// must be carried over or a restart would forget the fencing term.
	entries := []manifestEntry{entry}
	if e := r.epoch.Load(); e > 0 {
		entries = []manifestEntry{epochEntry(e), entry}
	}
	if err := r.rebaseManifest(entries); err != nil {
		return err
	}
	if err := r.hookAt(CrashSnapshotInstalled); err != nil {
		return err
	}
	if err := r.log.Checkpoint(cut.snapLSN); err != nil {
		return err
	}
	r.snapLSN = cut.snapLSN
	r.chain = []manifestEntry{entry}
	r.chainBytes = int64(len(payload))
	gens := cut.gens
	r.lastGens = &gens
	// The checkpoint is committed; only the cleanup of now-unreferenced
	// files remains (recovery tolerates the garbage and Open re-collects it).
	if err := r.hookAt(CrashSnapGC); err != nil {
		return err
	}
	r.gcSnapshots()
	return nil
}

// installIncremental runs the delta install protocol: delta file, manifest
// append, log mark.
func (r *Repository) installIncremental(cut *snapCut, payload []byte) error {
	entry := manifestEntry{kind: manifestKindInc, file: snapFileName(cut.snapLSN, false), lsn: cut.snapLSN}
	if err := r.writeSnapFile(entry.file, payload, CrashIncPartial); err != nil {
		return err
	}
	if err := r.hookAt(CrashIncWritten); err != nil {
		return err
	}
	if err := r.appendManifest(entry); err != nil {
		return err
	}
	if err := r.hookAt(CrashIncAppended); err != nil {
		return err
	}
	if err := r.log.Checkpoint(cut.snapLSN); err != nil {
		return err
	}
	r.snapLSN = cut.snapLSN
	r.chain = append(r.chain, entry)
	r.chainBytes += int64(len(payload))
	gens := cut.gens
	r.lastGens = &gens
	return nil
}

// SnapshotLSN reports the log position covered by the installed snapshot
// chain (0 when none was ever taken).
func (r *Repository) SnapshotLSN() wal.LSN {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return r.snapLSN
}

// SnapshotChain reports the length of the live snapshot chain (1 after a
// full checkpoint, growing by 1 per incremental) and its payload bytes.
func (r *Repository) SnapshotChain() (elems int, bytes int64) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return len(r.chain), r.chainBytes
}

// CheckpointPause reports the duration writers were blocked by the last
// snapshot cut and the maximum over the repository's lifetime — the
// quantity E19 bounds. Under QuiescentCheckpoint this includes the full
// state encoding; in the default design it is pointer capture only.
func (r *Repository) CheckpointPause() (last, max time.Duration) {
	return time.Duration(r.lastPauseNs.Load()), time.Duration(r.maxPauseNs.Load())
}

// notePause records one exclusive-section duration.
func (r *Repository) notePause(d time.Duration) {
	r.lastPauseNs.Store(int64(d))
	for {
		cur := r.maxPauseNs.Load()
		if int64(d) <= cur || r.maxPauseNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// hookAt traverses a crash point on the fault registry; an armed point
// aborts the checkpoint exactly at that step.
func (r *Repository) hookAt(point string) error {
	if err := r.faults.At(point); err != nil {
		return fmt.Errorf("repo: checkpoint aborted at %s: %w", point, err)
	}
	return nil
}

// snapFileName names a chain payload file by the log position it covers.
func snapFileName(lsn wal.LSN, base bool) string {
	if base {
		return fmt.Sprintf("snap-%016x.base", uint64(lsn))
	}
	return fmt.Sprintf("snap-%016x.inc", uint64(lsn))
}

// appendCRC appends the crc32-IEEE trailer shared by all snapshot payloads.
func appendCRC(payload []byte) []byte {
	crc := make([]byte, 4)
	binary.LittleEndian.PutUint32(crc, crc32.ChecksumIEEE(payload))
	return append(payload, crc...)
}

// checkCRC verifies and strips the trailer.
func checkCRC(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("repo: snapshot payload too short")
	}
	payload, crc := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("repo: snapshot checksum mismatch")
	}
	return payload, nil
}

// encodeRecords appends the cut's captured DOV records from the given shards
// in Seq order (the original log order, so rebuilding preserves every
// derivation edge).
func encodeRecords(w *binenc.Writer, shards []*map[version.ID]*dovEntry) error {
	var entries []*dovEntry
	for _, m := range shards {
		for _, e := range *m {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].dov.Seq < entries[j].dov.Seq })
	w.U64(uint64(len(entries)))
	for _, e := range entries {
		v := e.dov
		obj, err := catalog.EncodeObject(v.Object)
		if err != nil {
			return fmt.Errorf("repo: snapshot encode DOV %s: %w", v.ID, err)
		}
		w.Blob(dovRecord{
			ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
			Object: obj, Status: v.Status, Fulfilled: v.Fulfilled, Seq: v.Seq,
			Root: e.root,
		}.encode())
	}
	return nil
}

// encodeMeta appends the metadata store in key order.
func encodeMeta(w *binenc.Writer, meta map[string][]byte) {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.Str(k)
		w.Blob(meta[k])
	}
}

// encodeBaseCut serializes a full cut in the CCSNAP01 format (identical to
// the pre-chain single-snapshot format, so legacy snapshots load as a
// one-element chain).
func encodeBaseCut(c *snapCut) ([]byte, error) {
	w := binenc.NewWriter(1 << 16)
	w.Str(snapMagic)
	w.U64(uint64(c.snapLSN))
	w.U64(c.seq)
	w.Strs(c.daNames)
	all := make([]*map[version.ID]*dovEntry, 0, idxShards)
	for i := range c.shards {
		if c.shards[i] != nil {
			all = append(all, c.shards[i])
		}
	}
	if err := encodeRecords(w, all); err != nil {
		return nil, err
	}
	encodeMeta(w, c.meta)
	return appendCRC(w.Bytes()), nil
}

// encodeIncCut serializes an incremental cut in the CCINCR01 format: header
// (coverage LSN, predecessor LSN, sequence counter, complete DA list), the
// metadata store when dirty, then each dirty shard as a complete replacement
// record set. Emitting whole shards — not per-record diffs — keeps the fold
// a plain per-shard replacement with no tombstone machinery.
func encodeIncCut(c *snapCut) ([]byte, error) {
	w := binenc.NewWriter(1 << 14)
	w.Str(incMagic)
	w.U64(uint64(c.snapLSN))
	w.U64(uint64(c.prevLSN))
	w.U64(c.seq)
	w.Strs(c.daNames)
	w.Bool(c.meta != nil)
	if c.meta != nil {
		encodeMeta(w, c.meta)
	}
	var dirty []int
	for i := range c.shards {
		if c.shards[i] != nil {
			dirty = append(dirty, i)
		}
	}
	w.U64(uint64(len(dirty)))
	for _, i := range dirty {
		w.U64(uint64(i))
		if err := encodeRecords(w, []*map[version.ID]*dovEntry{c.shards[i]}); err != nil {
			return nil, err
		}
	}
	return appendCRC(w.Bytes()), nil
}

// writeSnapFile durably writes one chain payload file: write (traversing
// partialPoint halfway), fsync, close, fsync the directory — the file must
// be fully durable before any manifest entry references it.
func (r *Repository) writeSnapFile(name string, payload []byte, partialPoint string) error {
	f, err := os.OpenFile(filepath.Join(r.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: snapshot create: %w", err)
	}
	half := len(payload) / 2
	if _, err := f.Write(payload[:half]); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot write: %w", err)
	}
	if err := r.hookAt(partialPoint); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload[half:]); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: snapshot close: %w", err)
	}
	if err := wal.SyncDir(r.dir); err != nil {
		return fmt.Errorf("repo: snapshot dir sync: %w", err)
	}
	return nil
}

// gcSnapshots removes snapshot payload files no chain entry references (the
// superseded chain after a rebase, leftovers of crashed attempts), the
// legacy single-file snapshot and stray tmps. Only called when the in-memory
// chain matches the durable manifest; best-effort.
func (r *Repository) gcSnapshots() {
	ref := make(map[string]bool, len(r.chain))
	for _, e := range r.chain {
		ref[e.file] = true
	}
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		n := de.Name()
		if ref[n] {
			continue
		}
		if isSnapPayloadName(n) || n == legacySnapName || n == snapTmpName || n == manifestTmpName {
			os.Remove(filepath.Join(r.dir, n)) //nolint:errcheck // best-effort cleanup
		}
	}
}
