package repo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/wal"
)

// Checkpointing (DESIGN.md §3.5): the repository bounds restart time and log
// disk usage by periodically capturing its whole state — derivation graphs,
// DOVs, metadata store (including staged 2PC records) — in a snapshot file,
// then telling the segmented WAL to drop the covered prefix. The protocol:
//
//  1. Holding the quiesce lock exclusively (every mutator holds it shared
//     for the span [WAL reservation, publication], §3.7), encode the state
//     and note the log position L it corresponds to. The reserve-then-apply
//     discipline of appendAsync makes the quiesced in-memory state exactly
//     the effect of all records below L, so the pair (snapshot, L) is always
//     consistent — appends may keep committing past L while the snapshot is
//     written out.
//  2. Install the snapshot atomically: write snapshot.tmp, fsync, rename
//     over snapshot, fsync the directory.
//  3. wal.Checkpoint(L): durably mark L as the log's low-water mark, then
//     delete the segments lying entirely below it.
//
// Recovery inverts this: load the snapshot (if any), complete a possibly
// interrupted step 3 (the snapshot's L is authoritative; wal.Checkpoint is
// idempotent and monotonic), then replay the log suffix from L. A crash at
// any step loses nothing: before the rename the old snapshot and full log
// prefix are intact; after it the new snapshot covers everything below L.
const (
	snapName    = "snapshot"
	snapTmpName = "snapshot.tmp"
	snapMagic   = "CCSNAP01"
)

// Crash points traversed on Options.Faults during Checkpoint, in protocol
// order (the wal.Crash* points follow them inside wal.Checkpoint).
const (
	// CrashSnapshotPartial fires halfway through writing snapshot.tmp.
	CrashSnapshotPartial = "repo:snapshot-partial"
	// CrashSnapshotWritten fires after snapshot.tmp is written and synced,
	// before the rename.
	CrashSnapshotWritten = "repo:snapshot-written"
	// CrashSnapshotInstalled fires after the snapshot rename, before the
	// WAL low-water mark is moved.
	CrashSnapshotInstalled = "repo:snapshot-installed"
)

// CrashPoints lists every step of the checkpoint protocol a fault point can
// target, repository steps first, in the order they execute. The
// fault-injection harness iterates it so no step goes unexercised.
var CrashPoints = []string{
	CrashSnapshotPartial,
	CrashSnapshotWritten,
	CrashSnapshotInstalled,
	wal.CrashBeforeMark,
	wal.CrashMarkTmp,
	wal.CrashMarkInstalled,
	wal.CrashSegmentDeleted,
}

// Checkpoint captures the full repository state in a snapshot and compacts
// the redo log behind it. Concurrent mutators are blocked only while the
// state is encoded in memory, never during file I/O. Safe to call
// concurrently; checkpoints are serialized and monotonic.
func (r *Repository) Checkpoint() error {
	if r.log == nil {
		return nil // volatile repository: nothing to compact
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()

	r.mu.Lock()
	if err := r.alive(); err != nil {
		r.mu.Unlock()
		return err
	}
	snapLSN := wal.LSN(r.log.Size())
	if snapLSN <= r.snapLSN {
		r.mu.Unlock()
		return nil // no growth since the last snapshot
	}
	payload, err := r.encodeSnapshotQuiesced(snapLSN)
	r.mu.Unlock()
	if err != nil {
		return err
	}

	if err := r.installSnapshot(payload); err != nil {
		return err
	}
	if err := r.hookAt(CrashSnapshotInstalled); err != nil {
		return err
	}
	if err := r.log.Checkpoint(snapLSN); err != nil {
		return err
	}
	r.snapLSN = snapLSN
	return nil
}

// SnapshotLSN reports the log position covered by the last installed
// snapshot (0 when none was ever taken).
func (r *Repository) SnapshotLSN() wal.LSN {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return r.snapLSN
}

// hookAt traverses a crash point on the fault registry; an armed point
// aborts the checkpoint exactly at that step.
func (r *Repository) hookAt(point string) error {
	if err := r.faults.At(point); err != nil {
		return fmt.Errorf("repo: checkpoint aborted at %s: %w", point, err)
	}
	return nil
}

// encodeSnapshotQuiesced serializes graphs, DOVs (in Seq order — the
// original log order, so rebuilding preserves every derivation edge),
// metadata and the sequence counter. Caller holds the quiesce lock
// exclusively, so the per-shard index maps and the metadata store are
// stable without their own locks (metaMu is still taken: GetMeta/ListMeta
// readers do not hold the quiesce lock).
func (r *Repository) encodeSnapshotQuiesced(snapLSN wal.LSN) ([]byte, error) {
	w := binenc.NewWriter(1 << 16)
	w.Str(snapMagic)
	w.U64(uint64(snapLSN))
	w.U64(r.seq.Load())

	das := *r.dasPub.Load()
	graphs := make([]string, 0, len(das))
	for da := range das {
		graphs = append(graphs, da)
	}
	sort.Strings(graphs)
	w.Strs(graphs)

	entries := make([]*dovEntry, 0, r.idx.count())
	r.idx.each(func(_ version.ID, e *dovEntry) { entries = append(entries, e) })
	sort.Slice(entries, func(i, j int) bool { return entries[i].dov.Seq < entries[j].dov.Seq })
	w.U64(uint64(len(entries)))
	for _, e := range entries {
		v := e.dov
		obj, err := catalog.EncodeObject(v.Object)
		if err != nil {
			return nil, fmt.Errorf("repo: snapshot encode DOV %s: %w", v.ID, err)
		}
		w.Blob(dovRecord{
			ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
			Object: obj, Status: v.Status, Fulfilled: v.Fulfilled, Seq: v.Seq,
			Root: e.root,
		}.encode())
	}

	r.metaMu.Lock()
	keys := make([]string, 0, len(r.meta))
	for k := range r.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.Str(k)
		w.Blob(r.meta[k])
	}
	r.metaMu.Unlock()

	payload := w.Bytes()
	crc := make([]byte, 4)
	binary.LittleEndian.PutUint32(crc, crc32.ChecksumIEEE(payload))
	return append(payload, crc...), nil
}

// installSnapshot writes the encoded snapshot to its tmp file and renames it
// into place, fsyncing file and directory (atomic install).
func (r *Repository) installSnapshot(payload []byte) error {
	tmp := filepath.Join(r.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: snapshot tmp: %w", err)
	}
	half := len(payload) / 2
	if _, err := f.Write(payload[:half]); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot write: %w", err)
	}
	if err := r.hookAt(CrashSnapshotPartial); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload[half:]); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repo: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: snapshot close: %w", err)
	}
	if err := r.hookAt(CrashSnapshotWritten); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, snapName)); err != nil {
		return fmt.Errorf("repo: snapshot rename: %w", err)
	}
	if err := wal.SyncDir(r.dir); err != nil {
		return fmt.Errorf("repo: snapshot dir sync: %w", err)
	}
	return nil
}

// loadSnapshot restores repository state from the installed snapshot, if
// one exists, into the recovery staging map, and returns the log position it
// covers. A missing snapshot returns (0, nil): recovery falls back to full
// replay. The snapshot is only ever installed by a completed atomic rename,
// so a corrupt one is an error, not a tear to tolerate.
func (r *Repository) loadSnapshot(staging map[version.ID]*dovEntry) (wal.LSN, error) {
	os.Remove(filepath.Join(r.dir, snapTmpName)) //nolint:errcheck // stray tmp from a crashed checkpoint
	data, err := os.ReadFile(filepath.Join(r.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repo: read snapshot: %w", err)
	}
	if len(data) < 4 {
		return 0, errors.New("repo: snapshot too short")
	}
	payload, crc := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc) {
		return 0, errors.New("repo: snapshot checksum mismatch")
	}
	rd := binenc.NewReader(payload)
	if rd.Str() != snapMagic {
		return 0, errors.New("repo: bad snapshot magic")
	}
	snapLSN := wal.LSN(rd.U64())
	r.seq.Store(rd.U64())
	for _, da := range rd.Strs() {
		r.das[da] = &daState{g: version.NewGraph(da)}
	}
	nDOVs := rd.U64()
	for i := uint64(0); i < nDOVs && rd.Err() == nil; i++ {
		if err := r.applyDOVRecord(rd.Blob(), staging); err != nil {
			return 0, fmt.Errorf("repo: snapshot DOV: %w", err)
		}
	}
	nMeta := rd.U64()
	for i := uint64(0); i < nMeta && rd.Err() == nil; i++ {
		k := rd.Str()
		r.meta[k] = rd.Blob()
	}
	if err := rd.Err(); err != nil {
		return 0, fmt.Errorf("repo: decode snapshot: %w", err)
	}
	return snapLSN, nil
}
