package repo

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"concord/internal/fault"
	"concord/internal/version"
	"concord/internal/wal"
)

// TestRecoverMalformedStatusRecord pins the recovery behaviour on a
// truncated/corrupt status record: a payload whose status byte is missing
// must fail recovery with an error (it used to index past the end of the
// split and panic the restart). Both replay modes must agree.
func TestRecoverMalformedStatusRecord(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir)
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da", 100), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a status record with the status byte torn off, as a corrupt
	// writer (or bit rot below the CRC granularity of the upper layer)
	// would leave it.
	l, err := wal.Open(filepath.Join(dir, "repo.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(recDOVStatus, "da", []byte("v1\x00")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, serial := range []bool{true, false} {
		_, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, SerialReplay: serial})
		if err == nil {
			t.Fatalf("serial=%t: Open accepted a status record with no status byte", serial)
		}
		if !strings.Contains(err.Error(), "recover status") {
			t.Fatalf("serial=%t: unexpected recovery error: %v", serial, err)
		}
	}
}

// TestConcurrentMultiDAWritersReplayEquivalence races checkins across many
// DAs — with cross-DA parents and status flips in the mix — then crashes and
// recovers the directory through both replay modes. The sharded write path
// must leave a log whose serial and pipelined replays rebuild identical
// state, and every committed version must be present.
func TestConcurrentMultiDAWritersReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir)
	const das = 6
	const perDA = 30
	for i := 0; i < das; i++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// committed is the cross-DA parent pool: only published (checked-in)
	// versions enter it, so a racing writer can legally derive from them.
	var cmu sync.Mutex
	var committed []version.ID
	addCommitted := func(id version.ID) {
		cmu.Lock()
		committed = append(committed, id)
		cmu.Unlock()
	}
	pickCommitted := func(rng *rand.Rand) (version.ID, bool) {
		cmu.Lock()
		defer cmu.Unlock()
		if len(committed) == 0 {
			return "", false
		}
		return committed[rng.Intn(len(committed))], true
	}
	var wg sync.WaitGroup
	errs := make(chan error, das)
	for i := 0; i < das; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			da := fmt.Sprintf("da%d", w)
			var prev version.ID
			for j := 0; j < perDA; j++ {
				id := version.ID(fmt.Sprintf("%s/v%02d", da, j))
				v := mkDOV(string(id), da, float64(j))
				root := prev == ""
				if !root {
					v.Parents = []version.ID{prev}
					// Sometimes derive from another DA's committed version
					// (a usage input made visible along relationships).
					if p, ok := pickCommitted(rng); ok && rng.Intn(3) == 0 && p != prev {
						v.Parents = append(v.Parents, p)
					}
				}
				if err := r.Checkin(v, root); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				addCommitted(id)
				if rng.Intn(4) == 0 {
					if err := r.SetStatus(id, version.Status(1+rng.Intn(3))); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.DOVCount() != das*perDA {
		t.Fatalf("count = %d, want %d", r.DOVCount(), das*perDA)
	}
	// Crash: no Close — Sync=true made every committed operation durable.
	serial, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, SerialReplay: true})
	if err != nil {
		t.Fatalf("serial recovery: %v", err)
	}
	defer serial.Close()
	wantDigest := digest(t, serial)
	if err := serial.CheckConsistency(); err != nil {
		t.Fatalf("serial recovery consistency: %v", err)
	}
	serial.Close()
	piped, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, ReplayWorkers: 4})
	if err != nil {
		t.Fatalf("pipelined recovery: %v", err)
	}
	defer piped.Close()
	if err := piped.CheckConsistency(); err != nil {
		t.Fatalf("pipelined recovery consistency: %v", err)
	}
	if got := digest(t, piped); got != wantDigest {
		t.Fatalf("pipelined replay state differs from serial replay:\n--- serial\n%s--- pipelined\n%s", wantDigest, got)
	}
	if piped.DOVCount() != das*perDA {
		t.Fatalf("recovered %d DOVs, want %d", piped.DOVCount(), das*perDA)
	}
	for _, id := range committed {
		if ok, err := piped.Exists(id); err != nil || !ok {
			t.Fatalf("committed %s missing after recovery (ok=%t err=%v)", id, ok, err)
		}
	}
}

// TestCheckpointCrashRacingMultiDAWriters injects a crash at every step of
// the checkpoint protocol while checkins race across four DAs. Whatever the
// interrupted checkpoint left behind, recovery must surface every committed
// version and a consistent graph set.
func TestCheckpointCrashRacingMultiDAWriters(t *testing.T) {
	for _, point := range CrashPoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crash := errors.New("injected crash")
			reg := fault.New()
			r, err := Open(testCatalog(t), Options{Dir: dir, Sync: true, SegmentBytes: 4 << 10, Faults: reg})
			if err != nil {
				t.Fatal(err)
			}
			// Pre-crash history so every protocol step has work to do (in
			// particular sealed segments below the mark, or the
			// segment-deletion crash point never fires).
			churn(t, r, "w-", 4, 150)
			const das = 4
			const perDA = 20
			for i := 0; i < das; i++ {
				if err := r.CreateGraph(fmt.Sprintf("da%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			werrs := make(chan error, das)
			start := make(chan struct{})
			for i := 0; i < das; i++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					da := fmt.Sprintf("da%d", w)
					var prev version.ID
					for j := 0; j < perDA; j++ {
						id := version.ID(fmt.Sprintf("%s/v%02d", da, j))
						v := mkDOV(string(id), da, float64(j))
						if prev != "" {
							v.Parents = []version.ID{prev}
						}
						if err := r.Checkin(v, prev == ""); err != nil {
							werrs <- err
							return
						}
						prev = id
					}
				}(i)
			}
			close(start)
			// Let the writers interleave with a checkpoint that dies at the
			// injected step (the crash leaves the process "half checkpointed").
			// The first attempt rebases (full); the incremental-only points
			// fire on the delta path of a follow-up attempt.
			crashCheckpointAt(t, r, reg, point, crash)
			wg.Wait()
			close(werrs)
			for err := range werrs {
				t.Fatal(err)
			}
			// Abandon r (process death) and recover from the directory alone.
			r2 := openRepoOpts(t, dir, Options{SegmentBytes: 4 << 10})
			if err := r2.CheckConsistency(); err != nil {
				t.Fatalf("crash at %s: consistency: %v", point, err)
			}
			if want := das*perDA + 4; r2.DOVCount() != want {
				t.Fatalf("crash at %s: recovered %d DOVs, want %d", point, r2.DOVCount(), want)
			}
		})
	}
}

// TestSerializedWritesAblation pins the E16 baseline: with SerializedWrites
// every mutation still works (just serially, holding the repository lock
// across its forced write) and recovery rebuilds the identical state through
// the default sharded path.
func TestSerializedWritesAblation(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SerializedWrites: true})
	const das = 3
	const perDA = 10
	for i := 0; i < das; i++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, das)
	for i := 0; i < das; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			da := fmt.Sprintf("da%d", w)
			var prev version.ID
			for j := 0; j < perDA; j++ {
				id := version.ID(fmt.Sprintf("%s/v%02d", da, j))
				v := mkDOV(string(id), da, float64(j))
				if prev != "" {
					v.Parents = []version.ID{prev}
				}
				if err := r.Checkin(v, prev == ""); err != nil {
					errs <- err
					return
				}
				prev = id
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := digest(t, r)
	r.Close()
	r2 := openRepoOpts(t, dir, Options{})
	if got := digest(t, r2); got != want {
		t.Fatalf("state recovered from the serialized-writes log differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestClaimWaitsForInFlightRacer pins the duplicate-check contract of the
// sharded index: a racer finding an ID merely *claimed* (outcome open) must
// wait for the claim to resolve rather than report a duplicate —
// ErrDuplicateDOV has to mean "durably installed", which the server-TM's
// idempotent 2PC commit relies on.
func TestClaimWaitsForInFlightRacer(t *testing.T) {
	var x dovIndex
	x.init()
	if !x.claim("v1") {
		t.Fatal("first claim refused")
	}
	got := make(chan bool, 1)
	go func() { got <- x.claim("v1") }()
	select {
	case r := <-got:
		t.Fatalf("racing claim resolved to %t while the first claim was still open", r)
	case <-time.After(20 * time.Millisecond):
		// parked, as it should be
	}
	// The first checkin aborts: the racer must win the claim (the version
	// was never installed, so it is free to).
	x.unclaim("v1")
	if r := <-got; !r {
		t.Fatal("claim after the racer aborted reported a duplicate")
	}
	// Publication resolves waiters the other way: a racer parked behind a
	// claim that publishes must see the duplicate.
	go func() { got <- x.claim("v1") }()
	select {
	case r := <-got:
		t.Fatalf("racing claim resolved to %t while the second claim was still open", r)
	case <-time.After(20 * time.Millisecond):
	}
	x.put("v1", &dovEntry{dov: &version.DOV{ID: "v1"}, enc: &encMemo{}})
	if r := <-got; r {
		t.Fatal("claim after publication did not report the duplicate")
	}
}
