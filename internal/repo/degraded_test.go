package repo

import (
	"errors"
	"testing"

	"concord/internal/fault"
	"concord/internal/wal"
)

// A WAL append failure with DegradedOnWALFailure must latch read-only
// degraded mode: mutations refused with ErrDegraded, reads still served
// from the MVCC index, Health reporting the mode — and a restart with the
// disk healthy must recover the durable prefix and come back "ok".
func TestDegradedModeOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New()
	r, err := Open(testCatalog(t), Options{
		Dir: dir, Sync: true, Faults: reg, DegradedOnWALFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da", 100), true); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h.Mode != "ok" {
		t.Fatalf("health before fault = %+v", h)
	}

	// Disk full: the next append is refused and the error sticks.
	reg.Arm(wal.FaultAppendSync, errors.New("no space left on device"))
	if err := r.Checkin(mkDOV("v2", "da", 90, "v1"), false); !errors.Is(err, ErrDegraded) {
		t.Fatalf("checkin during disk-full: err = %v, want ErrDegraded", err)
	}
	reg.Disarm(wal.FaultAppendSync)

	// Degraded, not fail-stopped: reads keep serving, mutations fail fast.
	if h := r.Health(); h.Mode != "degraded" || h.Cause == "" {
		t.Fatalf("health after fault = %+v, want degraded with cause", h)
	}
	if _, err := r.Get("v1"); err != nil {
		t.Fatalf("Get in degraded mode: %v", err)
	}
	if ok, err := r.Exists("v1"); err != nil || !ok {
		t.Fatalf("Exists in degraded mode: ok=%t err=%v", ok, err)
	}
	if _, err := r.Graph("da"); err != nil {
		t.Fatalf("Graph in degraded mode: %v", err)
	}
	if err := r.Checkin(mkDOV("v3", "da", 80, "v1"), false); !errors.Is(err, ErrDegraded) {
		t.Fatalf("checkin in degraded mode: err = %v, want ErrDegraded", err)
	}
	if err := r.PutMeta("k", []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("PutMeta in degraded mode: err = %v, want ErrDegraded", err)
	}
	if err := r.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Checkpoint in degraded mode: err = %v, want ErrDegraded", err)
	}

	// Restart on a healthy disk: the durable prefix (v1, not the refused
	// v2) is recovered and the repository is writable again.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openRepo(t, dir)
	if h := r2.Health(); h.Mode != "ok" {
		t.Fatalf("health after restart = %+v", h)
	}
	if ok, err := r2.Exists("v1"); err != nil || !ok {
		t.Fatalf("v1 lost across restart: ok=%t err=%v", ok, err)
	}
	if ok, err := r2.Exists("v2"); err != nil || ok {
		t.Fatalf("refused v2 resurrected: ok=%t err=%v", ok, err)
	}
	if err := r2.Checkin(mkDOV("v4", "da", 70, "v1"), false); err != nil {
		t.Fatalf("checkin after restart: %v", err)
	}
}

// Without the knob the same failure fail-stops the whole repository.
func TestWALFailureFailStopsWithoutKnob(t *testing.T) {
	reg := fault.New()
	r, err := Open(testCatalog(t), Options{Dir: t.TempDir(), Sync: true, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da"); err != nil {
		t.Fatal(err)
	}
	reg.Arm(wal.FaultAppendSync, errors.New("no space left on device"))
	if err := r.Checkin(mkDOV("v1", "da", 1), true); !errors.Is(err, ErrFatal) {
		t.Fatalf("checkin: err = %v, want ErrFatal", err)
	}
	if _, err := r.Get("v1"); !errors.Is(err, ErrFatal) {
		t.Fatalf("Get: err = %v, want ErrFatal (fail-stop refuses reads)", err)
	}
	if h := r.Health(); h.Mode != "failstop" {
		t.Fatalf("health = %+v, want failstop", h)
	}
}
