package repo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/wal"
)

// The snapshot manifest (DESIGN.md §3.8) is the durable spine of the
// checkpoint chain: an append-only file of CRC-framed entries, each naming
// one payload file (snap-<lsn>.base or snap-<lsn>.inc) and the log position
// it covers. A full checkpoint atomically rewrites the whole manifest to a
// single base entry (tmp + fsync + rename + dir fsync); an incremental
// checkpoint appends one fsynced frame. Recovery reads the longest valid
// prefix — a torn append (crash mid-frame, or garbage at the tail) simply
// shortens the chain, and the WAL mark ordering (mark moves only after the
// covering entry is durable) guarantees the shortened chain plus the
// retained log suffix still reconstructs everything.
const (
	manifestName    = "snapmanifest"
	manifestTmpName = "snapmanifest.tmp"
)

// ManifestFileName is the on-disk name of the snapshot chain manifest inside
// the repository directory. Chaos harnesses use it to corrupt the manifest
// tail from outside the package.
const ManifestFileName = manifestName

// Manifest entry kinds.
const (
	manifestKindBase  = 1 // full snapshot; always the first chain element
	manifestKindInc   = 2 // incremental delta over the preceding chain prefix
	manifestKindEpoch = 3 // replication epoch marker; lsn carries the epoch value
)

// epochEntryFile is the file field of epoch entries. Epoch entries reference
// no payload file; the constant keeps them past the plain-name validation.
const epochEntryFile = "epoch"

// epochEntry builds the manifest frame persisting a replication epoch.
func epochEntry(e uint64) manifestEntry {
	return manifestEntry{kind: manifestKindEpoch, file: epochEntryFile, lsn: wal.LSN(e)}
}

// manifestEntry is one chain element.
type manifestEntry struct {
	kind byte
	file string
	lsn  wal.LSN
}

// encodeManifest frames entries: u32 length | u32 crc32-IEEE | payload,
// payload = byte kind, str file, u64 lsn.
func encodeManifest(entries []manifestEntry) []byte {
	var out []byte
	for _, e := range entries {
		w := binenc.NewWriter(32 + len(e.file))
		w.Byte(e.kind)
		w.Str(e.file)
		w.U64(uint64(e.lsn))
		p := w.Bytes()
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// parseManifest returns the longest valid entry prefix of data, split into
// the snapshot chain and the highest replication epoch recorded alongside
// it. A frame is valid when it is complete, its CRC matches, its payload
// decodes, and it keeps the chain well-formed: the first chain entry is a
// base, every later one is an incremental, coverage LSNs are strictly
// increasing, and the file name is a plain name (no path separators). Epoch
// entries (kind 3, promotion fencing — DESIGN.md §5.4) sit outside the
// chain-shape rules: they may appear anywhere, the highest value wins, and
// they are not returned as chain elements. Everything from the first invalid
// frame on — a torn append, appended garbage — is ignored.
func parseManifest(data []byte) ([]manifestEntry, uint64) {
	var out []manifestEntry
	var epoch uint64
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || uint64(n) > uint64(len(data)-8) {
			break
		}
		p := data[8 : 8+n]
		if crc32.ChecksumIEEE(p) != crc {
			break
		}
		rd := binenc.NewReader(p)
		e := manifestEntry{kind: rd.Byte(), file: rd.Str(), lsn: wal.LSN(rd.U64())}
		if rd.Err() != nil || rd.Remaining() != 0 {
			break
		}
		if e.file == "" || strings.ContainsAny(e.file, "/\\") || e.file != filepath.Base(e.file) {
			break
		}
		if e.kind == manifestKindEpoch {
			if e.file != epochEntryFile {
				break
			}
			if uint64(e.lsn) > epoch {
				epoch = uint64(e.lsn)
			}
			data = data[8+n:]
			continue
		}
		if len(out) == 0 {
			if e.kind != manifestKindBase {
				break
			}
		} else if e.kind != manifestKindInc || e.lsn <= out[len(out)-1].lsn {
			break
		}
		out = append(out, e)
		data = data[8+n:]
	}
	return out, epoch
}

// isSnapPayloadName reports whether a directory entry is a chain payload
// file (GC candidate when unreferenced).
func isSnapPayloadName(n string) bool {
	return strings.HasPrefix(n, "snap-") &&
		(strings.HasSuffix(n, ".base") || strings.HasSuffix(n, ".inc"))
}

// rebaseManifest atomically replaces the manifest with entries (full
// checkpoint): write tmp, fsync, rename, fsync directory.
func (r *Repository) rebaseManifest(entries []manifestEntry) error {
	tmp := filepath.Join(r.dir, manifestTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: manifest tmp: %w", err)
	}
	if _, err := f.Write(encodeManifest(entries)); err != nil {
		f.Close()
		return fmt.Errorf("repo: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repo: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: manifest close: %w", err)
	}
	if err := r.hookAt(CrashManifestTmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, manifestName)); err != nil {
		return fmt.Errorf("repo: manifest rename: %w", err)
	}
	if err := wal.SyncDir(r.dir); err != nil {
		return fmt.Errorf("repo: manifest dir sync: %w", err)
	}
	return nil
}

// appendManifest appends one fsynced frame to the manifest (incremental
// checkpoint). The manifest must already exist — an append can only follow a
// successful full checkpoint in this process.
func (r *Repository) appendManifest(e manifestEntry) error {
	f, err := os.OpenFile(filepath.Join(r.dir, manifestName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("repo: manifest append open: %w", err)
	}
	if _, err := f.Write(encodeManifest([]manifestEntry{e})); err != nil {
		f.Close()
		return fmt.Errorf("repo: manifest append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repo: manifest append sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: manifest append close: %w", err)
	}
	return nil
}

// baseSnap is a decoded CCSNAP01 payload.
type baseSnap struct {
	snapLSN wal.LSN
	seq     uint64
	daNames []string
	recs    []dovRecord
	meta    map[string][]byte
}

// decodeBasePayload decodes a full snapshot payload (CRC already verified
// and stripped by the caller).
func decodeBasePayload(payload []byte) (*baseSnap, error) {
	rd := binenc.NewReader(payload)
	if rd.Str() != snapMagic {
		return nil, errors.New("repo: bad snapshot magic")
	}
	b := &baseSnap{snapLSN: wal.LSN(rd.U64()), seq: rd.U64(), daNames: rd.Strs()}
	nDOVs := rd.U64()
	for i := uint64(0); i < nDOVs && rd.Err() == nil; i++ {
		dr, err := decodeDOVRecord(rd.Blob())
		if err != nil {
			return nil, fmt.Errorf("repo: snapshot DOV: %w", err)
		}
		b.recs = append(b.recs, dr)
	}
	b.meta = make(map[string][]byte)
	nMeta := rd.U64()
	for i := uint64(0); i < nMeta && rd.Err() == nil; i++ {
		k := rd.Str()
		b.meta[k] = rd.Blob()
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("repo: decode snapshot: %w", err)
	}
	return b, nil
}

// incShard is one dirty shard's complete replacement record set.
type incShard struct {
	idx  int
	recs []dovRecord
}

// incSnap is a decoded CCINCR01 payload.
type incSnap struct {
	snapLSN wal.LSN
	prevLSN wal.LSN
	seq     uint64
	daNames []string
	hasMeta bool
	meta    map[string][]byte
	shards  []incShard
}

// decodeIncPayload decodes an incremental delta payload (CRC already
// verified and stripped by the caller).
func decodeIncPayload(payload []byte) (*incSnap, error) {
	rd := binenc.NewReader(payload)
	if rd.Str() != incMagic {
		return nil, errors.New("repo: bad delta magic")
	}
	s := &incSnap{
		snapLSN: wal.LSN(rd.U64()), prevLSN: wal.LSN(rd.U64()),
		seq: rd.U64(), daNames: rd.Strs(), hasMeta: rd.Bool(),
	}
	if s.hasMeta {
		s.meta = make(map[string][]byte)
		nMeta := rd.U64()
		for i := uint64(0); i < nMeta && rd.Err() == nil; i++ {
			k := rd.Str()
			s.meta[k] = rd.Blob()
		}
	}
	nShards := rd.U64()
	for i := uint64(0); i < nShards && rd.Err() == nil; i++ {
		sh := incShard{idx: int(rd.U64())}
		if sh.idx < 0 || sh.idx >= idxShards {
			return nil, fmt.Errorf("repo: delta shard index %d out of range", sh.idx)
		}
		nRecs := rd.U64()
		for j := uint64(0); j < nRecs && rd.Err() == nil; j++ {
			dr, err := decodeDOVRecord(rd.Blob())
			if err != nil {
				return nil, fmt.Errorf("repo: delta DOV: %w", err)
			}
			sh.recs = append(sh.recs, dr)
		}
		s.shards = append(s.shards, sh)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("repo: decode delta: %w", err)
	}
	return s, nil
}

// chainFold accumulates the effect of a manifest chain. Records live in
// per-shard maps because an incremental element replaces whole shards: its
// record set for a dirty shard supersedes every earlier record of that
// shard, while clean shards carry over — no tombstones needed, since the
// repository never deletes versions.
type chainFold struct {
	coverage wal.LSN
	seq      uint64
	daNames  []string
	meta     map[string][]byte
	shards   [idxShards]map[version.ID]dovRecord
}

// foldBase resets the fold to a full snapshot.
func (f *chainFold) foldBase(b *baseSnap) {
	f.coverage = b.snapLSN
	f.seq = b.seq
	f.daNames = b.daNames
	f.meta = b.meta
	for i := range f.shards {
		f.shards[i] = nil
	}
	for _, dr := range b.recs {
		f.placeRecord(dr)
	}
}

// foldInc layers one incremental delta on top of the fold.
func (f *chainFold) foldInc(s *incSnap) {
	f.coverage = s.snapLSN
	f.seq = s.seq
	f.daNames = s.daNames
	if s.hasMeta {
		f.meta = s.meta
	}
	for _, sh := range s.shards {
		f.shards[sh.idx] = nil // whole-shard replacement
		for _, dr := range sh.recs {
			f.placeRecord(dr)
		}
	}
}

// placeRecord stores a record under its ID's true shard (recomputed, not
// trusted from the file, so a corrupt shard index cannot misplace state).
func (f *chainFold) placeRecord(dr dovRecord) {
	i := shardOf(dr.ID)
	if f.shards[i] == nil {
		f.shards[i] = make(map[version.ID]dovRecord)
	}
	f.shards[i][dr.ID] = dr
}

// install materializes the folded state into the recovering repository:
// DA graphs, staged index entries (in Seq order, so every derivation edge
// re-wires exactly as replay would build it), metadata and the sequence
// counter.
func (f *chainFold) install(r *Repository, staging map[version.ID]*dovEntry) error {
	r.seq.Store(f.seq)
	for _, da := range f.daNames {
		if _, ok := r.das[da]; !ok {
			r.das[da] = &daState{g: version.NewGraph(da)}
		}
	}
	var recs []dovRecord
	for i := range f.shards {
		for _, dr := range f.shards[i] {
			recs = append(recs, dr)
		}
	}
	// Seq order: parents always precede children (a parent's Seq is
	// allocated first), so graph inserts re-wire every derivation edge
	// exactly as replay would.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, dr := range recs {
		obj, err := catalog.DecodeObject(dr.Object)
		if err != nil {
			return err
		}
		if err := r.installRecovered(&decodedInsert{rec: dr, obj: obj}, staging); err != nil {
			return err
		}
	}
	for k, v := range f.meta {
		r.meta[k] = v
	}
	return nil
}

// loadSnapshotChain restores repository state from the durable snapshot
// chain into the recovery staging map and returns the chain plus the log
// position it covers. Resolution order:
//
//   - manifest present: fold its longest loadable prefix (parse stops at a
//     torn tail; loading stops at a missing/corrupt payload file or a delta
//     whose predecessor link skips ahead of the folded coverage — the
//     shortened chain plus the WAL suffix is still complete as long as the
//     WAL mark does not exceed the surviving coverage, which Open checks).
//   - no manifest, legacy single snapshot file: load it as a one-element
//     chain (pre-chain format compatibility).
//   - neither: full replay from LSN 0.
func (r *Repository) loadSnapshotChain(staging map[version.ID]*dovEntry) (wal.LSN, []manifestEntry, int64, error) {
	os.Remove(filepath.Join(r.dir, manifestTmpName)) //nolint:errcheck // stray tmp from a crashed rebase
	os.Remove(filepath.Join(r.dir, snapTmpName))     //nolint:errcheck // stray tmp from a pre-chain crash

	data, err := os.ReadFile(filepath.Join(r.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return r.loadLegacySnapshot(staging)
	}
	if err != nil {
		return 0, nil, 0, fmt.Errorf("repo: read manifest: %w", err)
	}
	entries, epoch := parseManifest(data)
	r.epoch.Store(epoch)
	var fold chainFold
	var kept []manifestEntry
	var keptBytes int64
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(r.dir, e.file))
		if err != nil {
			break
		}
		payload, err := checkCRC(raw)
		if err != nil {
			break
		}
		if e.kind == manifestKindBase {
			b, err := decodeBasePayload(payload)
			if err != nil || b.snapLSN != e.lsn {
				break
			}
			fold.foldBase(b)
		} else {
			s, err := decodeIncPayload(payload)
			// A delta whose predecessor link lies at or below the folded
			// coverage is safe: its dirty set is relative to an older
			// generation vector, i.e. a superset of the changes since the
			// fold. A link beyond the coverage would leave a gap.
			if err != nil || s.snapLSN != e.lsn || s.prevLSN > fold.coverage {
				break
			}
			fold.foldInc(s)
		}
		kept = append(kept, e)
		keptBytes += int64(len(raw))
	}
	if len(kept) == 0 {
		return 0, nil, 0, nil
	}
	if err := fold.install(r, staging); err != nil {
		return 0, nil, 0, err
	}
	return fold.coverage, kept, keptBytes, nil
}

// loadLegacySnapshot loads the pre-chain single snapshot file, if present,
// as a one-element chain.
func (r *Repository) loadLegacySnapshot(staging map[version.ID]*dovEntry) (wal.LSN, []manifestEntry, int64, error) {
	raw, err := os.ReadFile(filepath.Join(r.dir, legacySnapName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, 0, nil
	}
	if err != nil {
		return 0, nil, 0, fmt.Errorf("repo: read snapshot: %w", err)
	}
	payload, err := checkCRC(raw)
	if err != nil {
		// The legacy snapshot was only ever installed by a completed atomic
		// rename, so corruption is an error, not a tear to tolerate.
		return 0, nil, 0, err
	}
	b, err := decodeBasePayload(payload)
	if err != nil {
		return 0, nil, 0, err
	}
	var fold chainFold
	fold.foldBase(b)
	if err := fold.install(r, staging); err != nil {
		return 0, nil, 0, err
	}
	chain := []manifestEntry{{kind: manifestKindBase, file: legacySnapName, lsn: b.snapLSN}}
	return b.snapLSN, chain, int64(len(raw)), nil
}
