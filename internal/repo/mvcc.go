package repo

import (
	"sync"
	"sync/atomic"

	"concord/internal/catalog"
	"concord/internal/version"
)

// MVCC read path and sharded write index (DESIGN.md §3.6, §3.7): the
// repository publishes every DOV as an immutable record in a copy-on-write
// index whose shards are swapped with a single atomic pointer store. Readers
// (checkout, EncodedObject, Exists, Graph lookup) load the shard pointer,
// look the record up and return it — no repository lock, no payload clone.
//
// Writers no longer serialize behind one repository mutex: checkins to
// distinct design areas run concurrently under per-DA locks (repo.go), so the
// index itself arbitrates between them. Each shard carries a small writer
// mutex guarding its copy-on-write swap plus a claims set — IDs that a
// checkin has reserved (duplicate-checked and about to be logged) but not yet
// published. Claims make the duplicate check race-free across DAs without a
// global lock, while readers still pay exactly one atomic load and never
// observe a claim: a version exists only once it is published, which happens
// strictly after its WAL reservation (the §3.5/§3.7 ordering invariant).
//
// Immutability contract: a published *version.DOV (and its Object payload)
// is never mutated again. Status and Fulfilled updates install a fresh
// shallow copy; the superseded record stays valid forever for any reader
// still holding it — multi-version concurrency in its simplest form.

// idxShards is the copy-on-write fan-out. A write copies only its shard
// (1/64th of the index on average), so installs stay cheap while readers
// pay exactly one atomic load regardless of the shard count.
const idxShards = 64

// dovEntry is one published version: the immutable record plus the shared
// memo of its canonical payload encoding.
type dovEntry struct {
	dov *version.DOV
	// enc is shared across status/fulfilled re-publications of the same
	// version — the payload (and therefore its canonical encoding) never
	// changes after checkin.
	enc *encMemo
	// root marks a version adopted as a graph root (foreign parents
	// allowed). Snapshots must preserve the distinction so rebuilt graphs
	// wire exactly the edges replay would.
	root bool
}

// encMemo lazily caches a version's canonical payload encoding and content
// hash. The memo starts empty and fills on the first EncodedObject call, so
// resident memory grows with the read working set, not with history size
// (versions never checked out — the bulk of a long-lived repository — pin
// no second copy of their payload). Racing readers may compute the pair
// twice; the encoding is deterministic, so the duplicate install is
// idempotent and no lock is needed.
type encMemo struct {
	p atomic.Pointer[encPair]
}

// encPair is one memoized (encoding, hash) result.
type encPair struct {
	enc  []byte
	hash []byte
}

// encoded returns the memoized canonical encoding and hash of the entry's
// payload, computing and publishing them on first use.
func (e *dovEntry) encoded() ([]byte, []byte, error) {
	if p := e.enc.p.Load(); p != nil {
		return p.enc, p.hash, nil
	}
	enc, err := catalog.EncodeObject(e.dov.Object)
	if err != nil {
		return nil, nil, err
	}
	pair := &encPair{enc: enc, hash: catalog.HashEncoded(enc)}
	e.enc.p.Store(pair)
	return pair.enc, pair.hash, nil
}

// idxShard is one shard of the version index: the atomically swapped
// copy-on-write map readers load, plus the writer-side mutex and claims set
// that serialize concurrent publishers hashing onto this shard.
type idxShard struct {
	p atomic.Pointer[map[version.ID]*dovEntry]
	// mu serializes writers of this shard only (copy-on-write swap and the
	// claims set). Readers never take it.
	mu sync.Mutex
	// claims holds IDs reserved by in-flight checkins: duplicate-checked,
	// WAL position about to be (or being) reserved, not yet published.
	// The channel is closed when the claim resolves (publish or unclaim),
	// waking racers blocked in claim.
	claims map[version.ID]chan struct{}
	// gen counts publications into this shard — the incremental
	// checkpointer's dirty mark (DESIGN.md §3.8). Written under mu by
	// writers (who also hold the quiesce lock shared); read by the snapshot
	// cut, which holds the quiesce lock exclusively, so the RWMutex
	// ordering makes the plain read race-free.
	gen uint64
}

// dovIndex is the sharded copy-on-write version index.
type dovIndex struct {
	shards [idxShards]idxShard
}

// shardOf hashes an ID onto its shard (FNV-1a; allocation-free).
func shardOf(id version.ID) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h % idxShards
}

// init publishes empty shard maps so readers never see a nil pointer.
func (x *dovIndex) init() {
	for i := range x.shards {
		m := make(map[version.ID]*dovEntry)
		x.shards[i].p.Store(&m)
		x.shards[i].claims = make(map[version.ID]chan struct{})
	}
}

// get is the lock-free read: one atomic load, one map lookup, zero
// allocations. Claimed-but-unpublished IDs are invisible here by design —
// a version that has not reserved its log position must not be observable
// (and in particular must not satisfy another checkin's parent check).
func (x *dovIndex) get(id version.ID) (*dovEntry, bool) {
	m := x.shards[shardOf(id)].p.Load()
	e, ok := (*m)[id]
	return e, ok
}

// claim reserves an ID for an in-flight checkin — the race-free duplicate
// check of the sharded write path. It returns false only when the ID is
// already *published*; while a concurrent checkin merely holds a claim the
// outcome is still open (that checkin may abort before logging anything),
// so claim waits for the racing claim to resolve and then re-decides —
// reporting a duplicate for a version that never got installed would let a
// caller (e.g. the server-TM's idempotent 2PC commit) mistake an aborted
// racer for a durable install. Claims resolve within microseconds (reserve,
// insert, publish), and a waiter holds no shard mutex while blocked, so the
// wait cannot deadlock against the resolver. A successful claim must be
// resolved by publish (success) or unclaim (abort).
func (x *dovIndex) claim(id version.ID) bool {
	s := &x.shards[shardOf(id)]
	for {
		s.mu.Lock()
		if _, dup := (*s.p.Load())[id]; dup {
			s.mu.Unlock()
			return false
		}
		pending, inFlight := s.claims[id]
		if !inFlight {
			s.claims[id] = make(chan struct{})
			s.mu.Unlock()
			return true
		}
		s.mu.Unlock()
		<-pending
	}
}

// unclaim releases a claim whose checkin aborted before publication, waking
// any racer parked in claim.
func (x *dovIndex) unclaim(id version.ID) {
	s := &x.shards[shardOf(id)]
	s.mu.Lock()
	if ch, ok := s.claims[id]; ok {
		close(ch)
		delete(s.claims, id)
	}
	s.mu.Unlock()
}

// put publishes an entry by swapping a copied shard, consuming the caller's
// claim if one is held. Concurrent writers of the same shard serialize on the
// shard mutex; writers of other shards proceed in parallel.
//
// Cost note: a write copies its shard — n/idxShards entries on average — so
// install cost grows with resident history. At the repository sizes the
// checkpointing work targets (§3.5 keeps live state, not history, resident)
// this is microseconds against a WAL fsync; if writes ever dominate at much
// larger version counts, swap the shard map for a persistent (HAMT-style)
// structure behind the same surface.
func (x *dovIndex) put(id version.ID, e *dovEntry) {
	s := &x.shards[shardOf(id)]
	s.mu.Lock()
	if ch, ok := s.claims[id]; ok {
		close(ch)
		delete(s.claims, id)
	}
	old := s.p.Load()
	next := make(map[version.ID]*dovEntry, len(*old)+1)
	for k, v := range *old {
		next[k] = v
	}
	next[id] = e
	s.gen++
	s.p.Store(&next)
	s.mu.Unlock()
}

// count returns the number of published versions (lock-free).
func (x *dovIndex) count() int {
	n := 0
	for i := range x.shards {
		n += len(*x.shards[i].p.Load())
	}
	return n
}

// each invokes fn for every published entry. The iteration is per-shard
// consistent only; callers needing a global cut (snapshot encoding, digest)
// must have quiesced writers first (repo.go holds the quiesce lock
// exclusively there).
func (x *dovIndex) each(fn func(version.ID, *dovEntry)) {
	for i := range x.shards {
		for id, e := range *x.shards[i].p.Load() {
			fn(id, e)
		}
	}
}

// rebuild bulk-publishes the whole index in one pass per shard — recovery
// inserts thousands of versions, and per-record copy-on-write would cost
// O(n²/shards). Caller must own the repository exclusively (as at Open).
func (x *dovIndex) rebuild(entries map[version.ID]*dovEntry) {
	maps := make([]map[version.ID]*dovEntry, idxShards)
	for i := range maps {
		maps[i] = make(map[version.ID]*dovEntry)
	}
	for id, e := range entries {
		maps[shardOf(id)][id] = e
	}
	for i := range maps {
		m := maps[i]
		x.shards[i].p.Store(&m)
	}
}
