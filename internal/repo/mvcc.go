package repo

import (
	"sync/atomic"

	"concord/internal/catalog"
	"concord/internal/version"
)

// MVCC read path (DESIGN.md §3.6): the repository publishes every DOV as an
// immutable record in a copy-on-write index whose shards are swapped with a
// single atomic pointer store. Readers (checkout, EncodedObject, Exists,
// Graph lookup) load the shard pointer, look the record up and return it —
// no repository lock, no payload clone. Writers (Checkin, SetStatus,
// SetFulfilled) keep running under the existing write lock r.mu, which makes
// them the only index mutators: they build a fresh shard map containing the
// new immutable record and publish it with one atomic store, preserving the
// §3.5 reservation-order WAL invariant untouched.
//
// Immutability contract: a published *version.DOV (and its Object payload)
// is never mutated again. Status and Fulfilled updates install a fresh
// shallow copy; the superseded record stays valid forever for any reader
// still holding it — multi-version concurrency in its simplest form.

// idxShards is the copy-on-write fan-out. A write copies only its shard
// (1/64th of the index on average), so installs stay cheap while readers
// pay exactly one atomic load regardless of the shard count.
const idxShards = 64

// dovEntry is one published version: the immutable record plus the shared
// memo of its canonical payload encoding.
type dovEntry struct {
	dov *version.DOV
	// enc is shared across status/fulfilled re-publications of the same
	// version — the payload (and therefore its canonical encoding) never
	// changes after checkin.
	enc *encMemo
}

// encMemo lazily caches a version's canonical payload encoding and content
// hash. The memo starts empty and fills on the first EncodedObject call, so
// resident memory grows with the read working set, not with history size
// (versions never checked out — the bulk of a long-lived repository — pin
// no second copy of their payload). Racing readers may compute the pair
// twice; the encoding is deterministic, so the duplicate install is
// idempotent and no lock is needed.
type encMemo struct {
	p atomic.Pointer[encPair]
}

// encPair is one memoized (encoding, hash) result.
type encPair struct {
	enc  []byte
	hash []byte
}

// encoded returns the memoized canonical encoding and hash of the entry's
// payload, computing and publishing them on first use.
func (e *dovEntry) encoded() ([]byte, []byte, error) {
	if p := e.enc.p.Load(); p != nil {
		return p.enc, p.hash, nil
	}
	enc, err := catalog.EncodeObject(e.dov.Object)
	if err != nil {
		return nil, nil, err
	}
	pair := &encPair{enc: enc, hash: catalog.HashEncoded(enc)}
	e.enc.p.Store(pair)
	return pair.enc, pair.hash, nil
}

// dovIndex is the sharded copy-on-write version index.
type dovIndex struct {
	shards [idxShards]atomic.Pointer[map[version.ID]*dovEntry]
}

// shardOf hashes an ID onto its shard (FNV-1a; allocation-free).
func shardOf(id version.ID) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h % idxShards
}

// init publishes empty shard maps so readers never see a nil pointer.
func (x *dovIndex) init() {
	for i := range x.shards {
		m := make(map[version.ID]*dovEntry)
		x.shards[i].Store(&m)
	}
}

// get is the lock-free read: one atomic load, one map lookup, zero
// allocations.
func (x *dovIndex) get(id version.ID) (*dovEntry, bool) {
	m := x.shards[shardOf(id)].Load()
	e, ok := (*m)[id]
	return e, ok
}

// put publishes an entry by swapping a copied shard. Callers must hold the
// repository write lock (r.mu): it is what serializes index writers.
//
// Cost note: a write copies its shard — n/idxShards entries on average — so
// install cost grows with resident history. At the repository sizes the
// checkpointing work targets (§3.5 keeps live state, not history, resident)
// this is microseconds against a WAL fsync; if writes ever dominate at much
// larger version counts, swap the shard map for a persistent (HAMT-style)
// structure behind the same two-method surface.
func (x *dovIndex) put(id version.ID, e *dovEntry) {
	s := &x.shards[shardOf(id)]
	old := s.Load()
	next := make(map[version.ID]*dovEntry, len(*old)+1)
	for k, v := range *old {
		next[k] = v
	}
	next[id] = e
	s.Store(&next)
}

// rebuild bulk-publishes the whole index in one pass per shard — recovery
// inserts thousands of versions, and per-record copy-on-write would cost
// O(n²/shards). Caller must hold r.mu (or be the only goroutine, as at
// Open).
func (x *dovIndex) rebuild(entries map[version.ID]*dovEntry) {
	maps := make([]map[version.ID]*dovEntry, idxShards)
	for i := range maps {
		maps[i] = make(map[version.ID]*dovEntry)
	}
	for id, e := range entries {
		maps[shardOf(id)][id] = e
	}
	for i := range maps {
		m := maps[i]
		x.shards[i].Store(&m)
	}
}
