package repo

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"concord/internal/catalog"
	"concord/internal/version"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if err := c.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func openRepo(t *testing.T, dir string) *Repository {
	t.Helper()
	r, err := Open(testCatalog(t), Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func mkDOV(id, da string, area float64, parents ...version.ID) *version.DOV {
	obj := catalog.NewObject("floorplan").
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(area))
	return &version.DOV{
		ID: version.ID(id), DOT: "floorplan", DA: da,
		Parents: parents, Object: obj, Status: version.StatusWorking,
	}
}

func TestCheckinAndGet(t *testing.T) {
	r := openRepo(t, t.TempDir())
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da1", 100), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v2", "da1", 90, "v1"), false); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("v2")
	if err != nil {
		t.Fatal(err)
	}
	if got.Parents[0] != "v1" || catalog.NumAttr(got.Object, "area") != 90 {
		t.Fatalf("got %+v", got)
	}
	// Get returns the shared immutable record (MVCC, no clone): repeated
	// reads observe the identical version, and a status update republishes
	// rather than mutating the record a reader may still hold.
	again, _ := r.Get("v2")
	if again != got {
		t.Fatal("Get should return the published immutable record")
	}
	if err := r.SetStatus("v2", version.StatusFinal); err != nil {
		t.Fatal(err)
	}
	if got.Status != version.StatusWorking {
		t.Fatal("SetStatus mutated a published record in place")
	}
	fresh, _ := r.Get("v2")
	if fresh.Status != version.StatusFinal {
		t.Fatal("SetStatus update not visible to new readers")
	}
	if r.DOVCount() != 2 {
		t.Fatalf("DOVCount = %d", r.DOVCount())
	}
}

func TestCheckinValidation(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	// Missing required attribute.
	bad := mkDOV("v1", "da1", 10)
	delete(bad.Object.Attrs, "cell")
	if err := r.Checkin(bad, true); !errors.Is(err, ErrValidation) {
		t.Fatalf("missing attr = %v, want ErrValidation", err)
	}
	// Out-of-bounds attribute.
	if err := r.Checkin(mkDOV("v2", "da1", -5), true); !errors.Is(err, ErrValidation) {
		t.Fatalf("bad area = %v, want ErrValidation", err)
	}
	// Declared DOT mismatch.
	mis := mkDOV("v3", "da1", 10)
	mis.DOT = "netlist"
	if err := r.Checkin(mis, true); !errors.Is(err, ErrValidation) {
		t.Fatalf("DOT mismatch = %v, want ErrValidation", err)
	}
	// Unknown graph.
	if err := r.Checkin(mkDOV("v4", "ghost", 10), true); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph = %v, want ErrUnknownGraph", err)
	}
	// Unknown parent.
	if err := r.Checkin(mkDOV("v5", "da1", 10, "ghost"), false); !errors.Is(err, version.ErrUnknownDOV) {
		t.Fatalf("unknown parent = %v", err)
	}
	if r.DOVCount() != 0 {
		t.Fatalf("rejected checkins stored: count = %d", r.DOVCount())
	}
}

func TestDuplicateCheckin(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da1", 10), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da1", 20), true); !errors.Is(err, version.ErrDuplicateDOV) {
		t.Fatalf("duplicate = %v", err)
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir)
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da1", 100), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v2", "da1", 80, "v1"), false); err != nil {
		t.Fatal(err)
	}
	if err := r.SetStatus("v2", version.StatusFinal); err != nil {
		t.Fatal(err)
	}
	if err := r.PutMeta("cm/da1", []byte("active")); err != nil {
		t.Fatal(err)
	}
	if err := r.PutMeta("cm/da2", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteMeta("cm/da2"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2 := openRepo(t, dir) // simulated server restart
	if err := r2.CheckConsistency(); err != nil {
		t.Fatalf("consistency after recovery: %v", err)
	}
	v2, err := r2.Get("v2")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != version.StatusFinal {
		t.Fatalf("status after recovery = %s", v2.Status)
	}
	if catalog.NumAttr(v2.Object, "area") != 80 {
		t.Fatalf("payload after recovery = %g", catalog.NumAttr(v2.Object, "area"))
	}
	g, err := r2.Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("graph len after recovery = %d", g.Len())
	}
	ok, err := g.IsAncestor("v1", "v2")
	if err != nil || !ok {
		t.Fatalf("derivation edge lost: %t, %v", ok, err)
	}
	if v, err := r2.GetMeta("cm/da1"); err != nil || string(v) != "active" {
		t.Fatalf("meta after recovery = %q, %v", v, err)
	}
	if _, err := r2.GetMeta("cm/da2"); !errors.Is(err, ErrUnknownMeta) {
		t.Fatalf("deleted meta resurrected: %v", err)
	}
	// New checkins must get fresh sequence numbers after recovery.
	if err := r2.CreateGraph("da2"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Checkin(mkDOV("v3", "da2", 10), true); err != nil {
		t.Fatal(err)
	}
	v3, _ := r2.Get("v3")
	if v3.Seq <= v2.Seq {
		t.Fatalf("seq not monotonic after recovery: %d <= %d", v3.Seq, v2.Seq)
	}
}

func TestVolatileModeWorksWithoutDir(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkin(mkDOV("v1", "da1", 10), true); err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Exists("v1"); err != nil || !ok {
		t.Fatalf("volatile checkin lost (ok=%t err=%v)", ok, err)
	}
}

func TestMetaOperations(t *testing.T) {
	r := openRepo(t, "")
	if err := r.PutMeta("dm/ws1/script", []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if err := r.PutMeta("dm/ws1/log", []byte("l1")); err != nil {
		t.Fatal(err)
	}
	if err := r.PutMeta("cm/hierarchy", []byte("h")); err != nil {
		t.Fatal(err)
	}
	keys := r.ListMeta("dm/ws1/")
	if len(keys) != 2 || keys[0] != "dm/ws1/log" {
		t.Fatalf("ListMeta = %v", keys)
	}
	if err := r.PutMeta("bad\x00key", nil); err == nil {
		t.Fatal("NUL key accepted")
	}
	if err := r.DeleteMeta("never-existed"); err != nil {
		t.Fatalf("idempotent delete: %v", err)
	}
	// Stored values are copied.
	val := []byte("mutate-me")
	if err := r.PutMeta("k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X'
	got, _ := r.GetMeta("k")
	if string(got) != "mutate-me" {
		t.Fatal("PutMeta aliased caller slice")
	}
}

func TestNextIDUnique(t *testing.T) {
	r := openRepo(t, "")
	seen := make(map[version.ID]bool)
	for i := 0; i < 100; i++ {
		id := r.NextID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestCreateGraphIdempotent(t *testing.T) {
	r := openRepo(t, "")
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	names := r.GraphNames()
	if len(names) != 1 {
		t.Fatalf("GraphNames = %v", names)
	}
	if _, err := r.Graph("ghost"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("Graph(ghost) = %v", err)
	}
}

// Property: any chain of checkins recovers identically after restart.
func TestQuickRecoveryEquivalence(t *testing.T) {
	prop := func(areas []uint16) bool {
		if len(areas) == 0 || len(areas) > 24 {
			return true
		}
		dir, err := tempDir()
		if err != nil {
			return false
		}
		defer cleanDir(dir)
		cat := catalog.New()
		if err := cat.Register(&catalog.DOT{
			Name:  "floorplan",
			Attrs: []catalog.AttrDef{{Name: "cell", Kind: catalog.KindString, Required: true}, {Name: "area", Kind: catalog.KindFloat}},
		}); err != nil {
			return false
		}
		r, err := Open(cat, Options{Dir: dir})
		if err != nil {
			return false
		}
		if err := r.CreateGraph("da"); err != nil {
			return false
		}
		var prev version.ID
		for i, a := range areas {
			id := version.ID(fmt.Sprintf("v%d", i))
			obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("c")).Set("area", catalog.Float(float64(a)))
			v := &version.DOV{ID: id, DOT: "floorplan", DA: "da", Object: obj, Status: version.StatusWorking}
			root := i == 0
			if !root {
				v.Parents = []version.ID{prev}
			}
			if err := r.Checkin(v, root); err != nil {
				return false
			}
			prev = id
		}
		r.Close()
		r2, err := Open(cat, Options{Dir: dir})
		if err != nil {
			return false
		}
		defer r2.Close()
		if r2.DOVCount() != len(areas) {
			return false
		}
		for i, a := range areas {
			v, err := r2.Get(version.ID(fmt.Sprintf("v%d", i)))
			if err != nil || catalog.NumAttr(v.Object, "area") != float64(a) {
				return false
			}
		}
		return r2.CheckConsistency() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
