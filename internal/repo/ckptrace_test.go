package repo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/version"
)

// TestCheckpointerRacesShardedWriters is the -race stress for the
// copy-on-write cut: a checkpointer loops full and incremental checkpoints
// (CheckpointMaxChain: 2 alternates the two paths) while eight per-DA writers
// drive checkins, status flips, and metadata churn. The detector proves the
// dirty-gen reads and shard-pointer captures are properly ordered against the
// writers; the pause accessor proves the exclusive window stays a pointer
// copy, not a full encode; and a restart proves the published chain is a
// consistent cut.
func TestCheckpointerRacesShardedWriters(t *testing.T) {
	dir := t.TempDir()
	r := openRepoOpts(t, dir, Options{SegmentBytes: 8 << 10, CheckpointMaxChain: 2})
	const writers, per = 8, 40
	for w := 0; w < writers; w++ {
		if err := r.CreateGraph(fmt.Sprintf("da%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	var done atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done.Add(1)
			da := fmt.Sprintf("da%d", w)
			var prev version.ID
			for j := 0; j < per; j++ {
				id := version.ID(fmt.Sprintf("%s/v%02d", da, j))
				v := mkDOV(string(id), da, float64(j))
				if prev != "" {
					v.Parents = []version.ID{prev}
				}
				if err := r.Checkin(v, prev == ""); err != nil {
					t.Errorf("checkin %s: %v", id, err)
					return
				}
				prev = id
				if j%3 == 0 {
					if err := r.SetStatus(id, version.Status(1+j%3)); err != nil {
						t.Errorf("status %s: %v", id, err)
						return
					}
				}
				if j%5 == 0 {
					if err := r.PutMeta(fmt.Sprintf("%s/meta", da), []byte{byte(j)}); err != nil {
						t.Errorf("meta %s: %v", da, err)
						return
					}
				}
			}
		}(w)
	}
	ckpts := 0
	for done.Load() < writers {
		if err := r.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", ckpts, err)
		}
		ckpts++
	}
	wg.Wait()
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckpts++
	if ckpts < 3 {
		t.Fatalf("only %d checkpoints raced the writers; stress proved nothing", ckpts)
	}
	// The publish window is a pointer capture: even under the race detector's
	// slowdown it must stay far below an encode-everything quiesce.
	if _, max := r.CheckpointPause(); max > 250*time.Millisecond {
		t.Fatalf("max checkpoint pause %v: exclusive window is not a pointer copy", max)
	}
	want := digest(t, r)
	r.Close()
	r2 := openRepoOpts(t, dir, Options{SegmentBytes: 8 << 10})
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if r2.DOVCount() != writers*per {
		t.Fatalf("recovered %d DOVs, want %d", r2.DOVCount(), writers*per)
	}
	if got := digest(t, r2); got != want {
		t.Fatalf("state after racing checkpoints differs after restart:\n--- want\n%s--- got\n%s", want, got)
	}
}
