// Command concordbench regenerates every figure of the paper (E1-E8), the
// synthetic quantifications (E9-E11) and the scaling scenarios: E12
// (multi-workstation load), E13 (bounded-time restart), E14 (workstation
// cache and delta shipping), E15 (MVCC read-path scaling), E16 (sharded
// write path and pipelined replay), E18 (multiplexed wire protocol over
// real sockets), E19 (writer latency under non-quiescent checkpointing) and
// E20 (warm-standby replication cost and client-driven failover),
// printing one table per experiment. See DESIGN.md §6 for the
// experiment index and EXPERIMENTS.md for the paper-vs-measured record.
//
// With -json, every machine-readable metric the selected experiments emit is
// additionally written to the given file as a JSON array of
// {experiment, metric, value, unit, git_rev} records — the perf-trajectory
// format CI archives (BENCH_E15.json, BENCH_E16.json, BENCH_E18.json).
//
// Usage:
//
//	concordbench                            # run all experiments
//	concordbench E5 E12                     # run selected experiments
//	concordbench -json out/BENCH_E16.json E16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"concord/internal/experiments"
)

// benchRecord is one line of the -json output.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
	GitRev     string  `json:"git_rev"`
}

// gitRev resolves the source revision for the emitted records: CI's
// GITHUB_SHA when present, otherwise git itself, otherwise "unknown".
func gitRev() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	jsonPath := flag.String("json", "", "write machine-readable metrics of the selected experiments to this file")
	flag.Parse()

	runs := map[string]func() (experiments.Report, error){
		"E1": experiments.E1LevelStack, "E2": experiments.E2DesignPlane,
		"E3": experiments.E3ChipPlanning, "E4": experiments.E4DAHierarchy,
		"E5": experiments.E5Delegation, "E6": experiments.E6Scripts,
		"E7": experiments.E7StateGraph, "E8": experiments.E8FailureMatrix,
		"E9": experiments.E9Cooperation, "E10": experiments.E10CommitProtocols,
		"E11": experiments.E11RecoveryPoints, "E12": experiments.E12MultiWorkstation,
		"E13": experiments.E13Restart, "E14": experiments.E14CacheDelta,
		"E15": experiments.E15ReadPath, "E16": experiments.E16WritePath,
		"E18": experiments.E18WirePath, "E19": experiments.E19CheckpointLatency,
		"E20": experiments.E20Failover,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E18", "E19", "E20"}

	selected := flag.Args()
	if len(selected) == 0 {
		selected = order
	}
	rev := gitRev()
	// Non-nil so -json emits [] (not null) when nothing reports metrics.
	records := []benchRecord{}
	for _, id := range selected {
		run, ok := runs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", id, order)
			os.Exit(2)
		}
		rep, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		for _, m := range rep.Metrics {
			records = append(records, benchRecord{
				Experiment: rep.ID, Metric: m.Name, Value: m.Value, Unit: m.Unit, GitRev: rev,
			})
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(records), *jsonPath)
	}
}

// writeJSON marshals the records (pretty-printed, one object per block) and
// writes them atomically enough for a build artifact.
func writeJSON(path string, records []benchRecord) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
