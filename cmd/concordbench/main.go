// Command concordbench regenerates every figure of the paper (E1-E8), the
// synthetic quantifications (E9-E11) and the scaling scenarios: E12
// (multi-workstation load), E13 (bounded-time restart) and E14 (workstation
// cache and delta shipping), printing one table per experiment. See
// DESIGN.md §6 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	concordbench            # run all experiments
//	concordbench E5 E12     # run selected experiments
package main

import (
	"fmt"
	"os"

	"concord/internal/experiments"
)

func main() {
	runs := map[string]func() (experiments.Report, error){
		"E1": experiments.E1LevelStack, "E2": experiments.E2DesignPlane,
		"E3": experiments.E3ChipPlanning, "E4": experiments.E4DAHierarchy,
		"E5": experiments.E5Delegation, "E6": experiments.E6Scripts,
		"E7": experiments.E7StateGraph, "E8": experiments.E8FailureMatrix,
		"E9": experiments.E9Cooperation, "E10": experiments.E10CommitProtocols,
		"E11": experiments.E11RecoveryPoints, "E12": experiments.E12MultiWorkstation,
		"E13": experiments.E13Restart, "E14": experiments.E14CacheDelta,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}

	selected := os.Args[1:]
	if len(selected) == 0 {
		selected = order
	}
	for _, id := range selected {
		run, ok := runs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", id, order)
			os.Exit(2)
		}
		rep, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
	}
}
