// Command concordd runs a stand-alone CONCORD server site over TCP: the
// design data repository, server-TM and 2PC participant behind the
// workstation/server protocol of Sect. 5.1. Workstations connect with the
// txn.ClientTM over the rpc.TCP transport.
//
// Replication (DESIGN.md §5.4): a second concordd started with -standby-of
// follows a primary through WAL shipping. The standby announces itself to the
// primary, which begins replicating (synchronously with -sync-repl, trailing
// with a -repl-lag-max window otherwise); the standby refuses client traffic
// until an epoch-fenced promotion makes it the primary. Promotion is what a
// workstation's failover performs through RPC; operators trigger it with the
// one-shot -promote verb. Both roles log a periodic health line with their
// replication role, fencing epoch and shipping lag.
//
// Usage:
//
//	concordd -addr :7070 -data /var/lib/concord
//	concordd -addr :7071 -data /var/lib/concord-standby -standby-of host-a:7070
//	concordd -promote -addr host-b:7071
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"concord/internal/binenc"
	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repl"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

// methodAttach is the standby's self-announcement to its primary: the payload
// names the address the standby serves the replication protocol at, and the
// primary responds by (re)starting its WAL shipper towards it. Idempotent, so
// the standby re-announces periodically and a restarted primary resumes
// shipping without operator action.
const methodAttach = "concordd/attach"

// config carries the parsed flags.
type config struct {
	addr, data string
	standbyOf  string
	syncRepl   bool
	replLagMax int64
	healthLog  time.Duration
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "listen address")
	flag.StringVar(&cfg.data, "data", "concord-data", "durable data directory")
	flag.StringVar(&cfg.standbyOf, "standby-of", "",
		"run as warm standby of the primary at this address: follow its WAL, refuse client traffic until promoted")
	flag.BoolVar(&cfg.syncRepl, "sync-repl", false,
		"primary: ship synchronously — commits wait for the standby's acknowledgement (core.Options.SyncReplication)")
	flag.Int64Var(&cfg.replLagMax, "repl-lag-max", 0,
		"primary: trailing-mode lag bound in bytes before batches ship inline again; 0 = unbounded (core.Options.ReplLagMax)")
	flag.DurationVar(&cfg.healthLog, "health-every", 30*time.Second,
		"interval of the role/epoch/lag health log line; 0 disables")
	promote := flag.Bool("promote", false,
		"one-shot: ask the standby at -addr to take over as primary, print the new epoch and exit")
	flag.Parse()

	if *promote {
		if err := runPromote(cfg.addr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

// runPromote dials the standby and performs the client-driven takeover
// (repl.MethodPromote), printing the fencing epoch the promoted server now
// serves under.
func runPromote(addr string) error {
	trans := rpc.NewTCP()
	defer trans.Close()
	client := rpc.NewClient(trans, fmt.Sprintf("promote@%d", os.Getpid()))
	reply, err := client.Call(addr, repl.MethodPromote, nil)
	if err != nil {
		return fmt.Errorf("promote %s: %w", addr, err)
	}
	r := binenc.NewReader(reply)
	epoch := r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("promote %s: bad reply: %w", addr, err)
	}
	fmt.Printf("concordd: %s promoted to primary at epoch %d\n", addr, epoch)
	return nil
}

func run(cfg config) error {
	trans := rpc.NewTCP()
	defer trans.Close()
	if cfg.standbyOf != "" {
		return runStandby(cfg, trans)
	}
	return runPrimary(cfg, trans)
}

// serverRole is the assembled primary-side server: server-TM, 2PC participant
// and cache-invalidation notifier over a repository + participant log. The
// primary builds it at boot; a standby builds it at promotion, over the
// replicated state.
type serverRole struct {
	stm      *txn.ServerTM
	notifier *rpc.Notifier
	handler  rpc.DeadlineHandler
}

func (sr *serverRole) close() { sr.notifier.Close() }

// newServerRole wires the server stack. The client ID seeds the notifier's
// dial-back client; it must be unique per server incarnation so workstation
// callback dedup never mistakes a new server's notifications for replays.
func newServerRole(r *repo.Repository, plog *wal.Log, trans *rpc.TCP, cbID string) (*serverRole, error) {
	locks := lock.NewManager()
	scopes := lock.NewScopeTable()
	stm := txn.NewServerTM(r, locks, scopes)
	if _, err := coop.NewCM(r, scopes, feature.NewRegistry()); err != nil {
		return nil, err
	}
	participant, err := rpc.NewParticipant(stm, plog)
	if err != nil {
		return nil, err
	}
	// Cache-invalidation callbacks: workstations register their callback
	// listener address at checkout time and the notifier dials back over the
	// same transport.
	notifier := rpc.NewNotifier(rpc.NewClient(trans, cbID), 0)
	stm.SetNotifier(notifier)
	r.SetChangeHook(stm.VersionChanged)
	return &serverRole{stm: stm, notifier: notifier, handler: stm.DeadlineHandler(participant)}, nil
}

// runPrimary serves the full workstation/server protocol and, once a standby
// attaches, ships both WAL streams to it.
func runPrimary(cfg config, trans *rpc.TCP) error {
	cat := vlsi.NewCatalog()
	r, err := repo.Open(cat, repo.Options{Dir: cfg.data, Sync: true})
	if err != nil {
		return err
	}
	defer r.Close()
	plog, err := wal.Open(filepath.Join(cfg.data, "participant.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		return err
	}
	defer plog.Close()
	role, err := newServerRole(r, plog, trans, fmt.Sprintf("concordd-cb@%d", os.Getpid()))
	if err != nil {
		return err
	}
	defer role.close()

	// The shipper towards the standby, created when one attaches. Guarded:
	// attach requests race with health probes and shutdown.
	var mu sync.Mutex
	var sender *repl.Sender
	var senderAddr string
	attach := func(addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if sender != nil && senderAddr == addr {
			return nil // re-announcement; the sender reconnects on its own
		}
		if sender != nil {
			r.Log().SetShipper(nil)
			plog.SetShipper(nil)
			sender.Close()
		}
		s := repl.NewSender(rpc.NewClient(trans, fmt.Sprintf("repl@%d", os.Getpid())), addr,
			[]repl.Stream{
				{ID: repl.StreamRepo, Log: r.Log()},
				{ID: repl.StreamPart, Log: plog},
			}, repl.SenderOptions{
				Sync:   cfg.syncRepl,
				LagMax: cfg.replLagMax,
				Epoch:  r.Epoch,
			})
		r.Log().SetShipper(s.Shipper(repl.StreamRepo))
		plog.SetShipper(s.Shipper(repl.StreamPart))
		sender, senderAddr = s, addr
		log.Printf("concordd: replicating to standby at %s (sync=%v, lag-max=%d)", addr, cfg.syncRepl, cfg.replLagMax)
		return nil
	}
	senderStats := func() repl.SenderStats {
		mu.Lock()
		defer mu.Unlock()
		if sender == nil {
			return repl.SenderStats{}
		}
		return sender.Stats()
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		if sender != nil {
			r.Log().SetShipper(nil)
			plog.SetShipper(nil)
			sender.Close()
		}
	}()
	role.stm.SetReplInfo(func() (string, uint64, uint64, uint64) {
		st := senderStats()
		var lagR, lagB uint64
		if st.LagRecords > 0 {
			lagR = uint64(st.LagRecords)
		}
		if st.LagBytes > 0 {
			lagB = uint64(st.LagBytes)
		}
		return "primary", r.Epoch(), lagR, lagB
	})

	base := role.handler
	dispatch := func(deadline time.Time, method string, payload []byte) ([]byte, error) {
		if method == methodAttach {
			rd := binenc.NewReader(payload)
			addr := rd.Str()
			if err := rd.Err(); err != nil {
				return nil, fmt.Errorf("concordd: bad attach payload: %w", err)
			}
			return nil, attach(addr)
		}
		return base(deadline, method, payload)
	}
	// Epoch fence: a workstation stamped with a newer term has witnessed a
	// failover this server missed — it is deposed and must not serve the call.
	bound, err := trans.ListenDeadline(cfg.addr, rpc.DedupDeadlineFenced(dispatch, rpc.EpochFence(r.Epoch)))
	if err != nil {
		return err
	}
	log.Printf("concordd: serving on %s, data in %s (%d DOVs recovered, epoch %d)",
		bound, cfg.data, r.DOVCount(), r.Epoch())

	stop := make(chan struct{})
	defer close(stop)
	healthLoop(cfg.healthLog, stop, func() string {
		h := r.Health()
		line := fmt.Sprintf("role=primary epoch=%d mode=%s", r.Epoch(), h.Mode)
		if st := senderStats(); st.Mode != 0 {
			line += fmt.Sprintf(" repl=%s lag=%drec/%dB degrades=%d", st.Mode, st.LagRecords, st.LagBytes, st.Degrades)
		}
		return line
	})
	waitSignal()
	return nil
}

// runStandby follows the primary at cfg.standbyOf: it serves the replication
// protocol (and health probes) at cfg.addr, announces itself to the primary so
// shipping starts, and refuses client traffic until a promotion assembles the
// full server role over the replicated state.
func runStandby(cfg config, trans *rpc.TCP) error {
	cat := vlsi.NewCatalog()
	r, err := repo.Open(cat, repo.Options{Dir: cfg.data, Sync: true, Follower: true})
	if err != nil {
		return err
	}
	defer r.Close()
	plog, err := wal.Open(filepath.Join(cfg.data, "participant.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		return err
	}
	defer plog.Close()

	var mu sync.Mutex
	var promoted *serverRole
	recv := repl.NewReceiver(r, plog, repl.ReceiverOptions{
		OnPromote: func(epoch uint64) error {
			role, err := newServerRole(r, plog, trans, fmt.Sprintf("standby-cb@%d", os.Getpid()))
			if err != nil {
				return err
			}
			role.stm.SetReplInfo(func() (string, uint64, uint64, uint64) {
				return "primary", r.Epoch(), 0, 0
			})
			mu.Lock()
			promoted = role
			mu.Unlock()
			log.Printf("concordd: promoted to primary at epoch %d", epoch)
			return nil
		},
	})
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		if promoted != nil {
			promoted.close()
		}
	}()

	dispatch := func(deadline time.Time, method string, payload []byte) ([]byte, error) {
		switch method {
		case repl.MethodHello, repl.MethodShip, repl.MethodPromote:
			return recv.Handler()(method, payload)
		}
		mu.Lock()
		role := promoted
		mu.Unlock()
		if role != nil {
			return role.handler(deadline, method, payload)
		}
		if method == txn.MethodHealth {
			return txn.EncodeHealthInfo(txn.ServerHealthInfo{
				Mode: r.Health().Mode, Role: "standby", Epoch: r.Epoch(),
			}), nil
		}
		return nil, fmt.Errorf("%w: standby serves no client traffic before promotion", repo.ErrFollower)
	}
	bound, err := trans.ListenDeadline(cfg.addr, rpc.DedupDeadlineFenced(dispatch, rpc.EpochFence(r.Epoch)))
	if err != nil {
		return err
	}
	log.Printf("concordd: standby of %s serving replication on %s, data in %s (%d DOVs recovered, epoch %d)",
		cfg.standbyOf, bound, cfg.data, r.DOVCount(), r.Epoch())

	stop := make(chan struct{})
	defer close(stop)
	go attachLoop(trans, cfg.standbyOf, bound, recv, stop)
	healthLoop(cfg.healthLog, stop, func() string {
		role := "standby"
		if recv.Promoted() {
			role = "primary"
		}
		st := recv.Stats()
		return fmt.Sprintf("role=%s epoch=%d mode=%s applied=%drec/%dB",
			role, r.Epoch(), r.Health().Mode, st.Records, st.Bytes)
	})
	waitSignal()
	return nil
}

// attachLoop announces the standby's replication address to the primary until
// promotion or shutdown. The announcement is idempotent and repeats so a
// restarted primary resumes shipping without operator action; failures are
// logged once per outage, not once per retry.
func attachLoop(trans *rpc.TCP, primary, self string, recv *repl.Receiver, stop <-chan struct{}) {
	client := rpc.NewClient(trans, fmt.Sprintf("attach@%d", os.Getpid()))
	w := binenc.GetWriter(64)
	w.Str(self)
	payload := w.Detach()
	attached := false
	for {
		if recv.Promoted() {
			return
		}
		if _, err := client.Call(primary, methodAttach, payload); err != nil {
			if attached {
				log.Printf("concordd: primary %s unreachable: %v", primary, err)
			}
			attached = false
		} else if !attached {
			log.Printf("concordd: attached to primary %s", primary)
			attached = true
		}
		select {
		case <-stop:
			return
		case <-time.After(2 * time.Second):
		}
	}
}

// healthLoop logs the role/epoch/lag line every interval (0 disables). It
// logs one line immediately so the startup state is on record.
func healthLoop(every time.Duration, stop <-chan struct{}, line func() string) {
	if every <= 0 {
		return
	}
	log.Printf("concordd: health %s", line())
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				log.Printf("concordd: health %s", line())
			}
		}
	}()
}

// waitSignal blocks until SIGINT/SIGTERM.
func waitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("concordd: shutting down")
}
