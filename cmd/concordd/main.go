// Command concordd runs a stand-alone CONCORD server site over TCP: the
// design data repository, server-TM and 2PC participant behind the
// workstation/server protocol of Sect. 5.1. Workstations connect with the
// txn.ClientTM over the rpc.TCP transport.
//
// Usage:
//
//	concordd -addr :7070 -data /var/lib/concord
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	data := flag.String("data", "concord-data", "durable data directory")
	flag.Parse()

	if err := run(*addr, *data); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string) error {
	cat := vlsi.NewCatalog()
	r, err := repo.Open(cat, repo.Options{Dir: data, Sync: true})
	if err != nil {
		return err
	}
	defer r.Close()

	locks := lock.NewManager()
	scopes := lock.NewScopeTable()
	stm := txn.NewServerTM(r, locks, scopes)
	if _, err := coop.NewCM(r, scopes, feature.NewRegistry()); err != nil {
		return err
	}
	plog, err := wal.Open(filepath.Join(data, "participant.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		return err
	}
	defer plog.Close()
	participant, err := rpc.NewParticipant(stm, plog)
	if err != nil {
		return err
	}
	trans := rpc.NewTCP()
	defer trans.Close()
	bound, err := trans.ListenDeadline(addr, rpc.DedupDeadline(stm.DeadlineHandler(participant)))
	if err != nil {
		return err
	}
	// Cache-invalidation callbacks: workstations register their callback
	// listener address at checkout time and the notifier dials back over the
	// same transport. The client ID is start-time-unique so workstation-side
	// dedup never mistakes a restarted server's callbacks for replays.
	cbClient := rpc.NewClient(trans, fmt.Sprintf("concordd-cb@%d", os.Getpid()))
	notifier := rpc.NewNotifier(cbClient, 0)
	defer notifier.Close()
	stm.SetNotifier(notifier)
	r.SetChangeHook(stm.VersionChanged)
	fmt.Printf("concordd: serving on %s, data in %s (%d DOVs recovered)\n",
		bound, data, r.DOVCount())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("concordd: shutting down")
	return nil
}
