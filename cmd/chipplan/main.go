// Command chipplan runs the paper's chip-planning scenario end-to-end
// (Sect. 3, Figs. 3 and 5): a generated cell hierarchy is planned top-down
// by recursively applying the chip planner, delegating each subtree to its
// own design activity.
//
// Usage:
//
//	chipplan -fanout 4 -depth 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"

	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/feature"
	"concord/internal/version"
	"concord/internal/vlsi"
)

func main() {
	fanout := flag.Int("fanout", 4, "subcells per cell")
	depth := flag.Int("depth", 2, "hierarchy depth below the chip")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()
	if err := run(*fanout, *depth, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(fanout, depth int, seed int64) error {
	sys, err := core.NewSystem(core.Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		return err
	}
	defer sys.Close()
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return err
	}
	chip := vlsi.GenerateHierarchy(seed, "chip", fanout, depth)
	fmt.Printf("chipplan: hierarchy of %d cells (fanout %d, depth %d)\n", chip.Count(), fanout, depth)

	cm := sys.CM()
	if err := cm.InitDesign(coop.Config{
		ID: "da:chip", DOT: vlsi.DOTChip,
		Spec:     feature.MustSpec(feature.Range("area-limit", "area", 0, chip.AreaEstimate*4)),
		Designer: "chief",
	}); err != nil {
		return err
	}
	if err := cm.Start("da:chip"); err != nil {
		return err
	}
	planned, err := planCell(sys, ws, chip, "da:chip")
	if err != nil {
		return err
	}
	fmt.Printf("chipplan: %d floorplans derived, %d DOVs stored, %d cooperation ops logged\n",
		planned, sys.Repo().DOVCount(), cm.ProtocolLogLen())
	return nil
}

// planCell plans one cell in its DA and delegates the subtrees (Fig. 5).
func planCell(sys *core.System, ws *core.Workstation, cell *vlsi.Cell, da string) (int, error) {
	if len(cell.Children) == 0 {
		return 0, nil
	}
	cm := sys.CM()
	shapes := vlsi.ShapesForChildren(cell, 5)
	fp, err := vlsi.PlanChip(cell.Netlist, vlsi.Interface{Cell: cell.Name}, shapes)
	if err != nil {
		return 0, err
	}
	dop, err := ws.Begin("", da)
	if err != nil {
		return 0, err
	}
	if err := dop.SetWorkspace(vlsi.FloorplanToObject(fp)); err != nil {
		return 0, err
	}
	id, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		return 0, err
	}
	if err := dop.Commit(); err != nil {
		return 0, err
	}
	if _, err := cm.Evaluate(da, id); err != nil {
		return 0, err
	}
	fmt.Printf("  %-14s planned: outline %.1fx%.1f, wire %.1f (DOV %s)\n",
		cell.Name, fp.Outline.W, fp.Outline.H, fp.WireLength, id)
	planned := 1
	// Delegate each subtree to its own sub-DA with the placed area budget.
	budget := make(map[string]float64)
	for _, p := range fp.Placements {
		budget[p.Name] = p.Rect.Area()
	}
	for _, child := range cell.Children {
		if len(child.Children) == 0 {
			continue
		}
		subDA := "da:" + child.Name
		if err := cm.CreateSubDA(da, coop.Config{
			ID: subDA, DOT: vlsi.DOTCell,
			Spec:     feature.MustSpec(feature.Range("area-limit", "area", 0, budget[child.Name]*2)),
			Designer: subDA,
		}); err != nil {
			return planned, err
		}
		if err := cm.Start(subDA); err != nil {
			return planned, err
		}
		n, err := planCell(sys, ws, child, subDA)
		if err != nil {
			return planned, err
		}
		planned += n
	}
	return planned, nil
}
