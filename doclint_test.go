package concord_test

// Doc-comment lint (the CI "exported-comment" gate, dependency-free): every
// package must carry a package comment, every exported top-level identifier
// a doc comment, and the level-implementing packages must say which CONCORD
// layer (DOM / DFM / cooperation) they belong to — so the godoc coverage
// added in PR 3 cannot silently regress.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintDirs lists the package directories under the repository root.
func lintDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// parsePackage parses the non-test files of one directory (nil when it holds
// no Go package).
func parsePackage(t *testing.T, dir string) *ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		if pkg.Name != "main" || dir == "." {
			return pkg
		}
		return pkg
	}
	return nil
}

func TestEveryPackageHasDocComment(t *testing.T) {
	for _, dir := range lintDirs(t) {
		pkg := parsePackage(t, dir)
		if pkg == nil {
			continue
		}
		documented := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s (%s) has no package doc comment", pkg.Name, dir)
		}
	}
}

// TestLayerStatedInLevelPackages pins the CONCORD-layer sentence in the
// packages that implement the model levels.
func TestLayerStatedInLevelPackages(t *testing.T) {
	want := map[string][]string{
		"internal/coop":    {"cooperation"},
		"internal/txn":     {"DOM"},
		"internal/version": {"DOM"},
		"internal/script":  {"DFM"},
		"internal/vlsi":    {"DOM"},
		"internal/catalog": {"DOM"},
	}
	for dir, terms := range want {
		pkg := parsePackage(t, dir)
		if pkg == nil {
			t.Fatalf("no package in %s", dir)
		}
		var doc string
		for _, f := range pkg.Files {
			if f.Doc != nil {
				doc += f.Doc.Text()
			}
		}
		for _, term := range terms {
			if !strings.Contains(doc, term) {
				t.Errorf("%s: package doc does not state its CONCORD layer (missing %q)", dir, term)
			}
		}
	}
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range lintDirs(t) {
		pkg := parsePackage(t, dir)
		if pkg == nil || pkg.Name == "main" {
			continue // commands document themselves via the package comment
		}
		for name, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(t, name, decl)
			}
		}
	}
}

func checkDecl(t *testing.T, file string, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", file, funcKind(d), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
					t.Errorf("%s: exported type %s has no doc comment", file, sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					// A group comment, a per-spec comment or a trailing
					// line comment all satisfy the rule (grouped consts).
					if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment", file, d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported (plain
// functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
