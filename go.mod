module concord

go 1.24
