// Quickstart: one design activity, one design operation, one final version.
//
// The smallest complete CONCORD interaction: initialize a design process,
// start its top-level design activity, run a DOP (checkout-free root
// derivation, savepoint, checkin), evaluate the result against the DA's
// specification, and observe it become final.
package main

import (
	"fmt"
	"log"

	"concord"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/vlsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot a system with the VLSI design object types.
	sys, err := concord.NewSystem(concord.Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		return err
	}
	defer sys.Close()

	// AC level: a design activity whose goal is a floorplan within an
	// area budget of 100 units.
	spec := concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, 100))
	if err := sys.CM().InitDesign(concord.DAConfig{
		ID: "da:quick", DOT: vlsi.DOTFloorplan, Spec: spec, Designer: "alice",
	}); err != nil {
		return err
	}
	if err := sys.CM().Start("da:quick"); err != nil {
		return err
	}

	// TE level: a design operation on a workstation.
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return err
	}
	dop, err := ws.Begin("", "da:quick")
	if err != nil {
		return err
	}
	// The "design tool": build a floorplan object in the DOP workspace.
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("demo")).
		Set("area", catalog.Float(140))
	if err := dop.SetWorkspace(obj); err != nil {
		return err
	}
	if err := dop.Save("first-try"); err != nil {
		return err
	}
	// The designer improves the plan; the savepoint would allow rollback.
	obj.Set("area", catalog.Float(85))

	dovID, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		return err
	}
	if err := dop.Commit(); err != nil {
		return err
	}
	fmt.Printf("checked in %s\n", dovID)

	// AC level again: Evaluate determines the quality state.
	q, err := sys.CM().Evaluate("da:quick", dovID)
	if err != nil {
		return err
	}
	fmt.Printf("quality: fulfilled=%v missing=%v final=%t\n", q.Fulfilled, q.Missing, q.Final())

	v, err := sys.Repo().Get(dovID)
	if err != nil {
		return err
	}
	fmt.Printf("stored version status: %s\n", v.Status)
	return nil
}
