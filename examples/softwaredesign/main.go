// Software design: the paper's second field-experiment domain (Sect. 6
// mentions validation "in the design areas of VLSI and software
// engineering").
//
// A software system is decomposed into modules; two module DAs negotiate an
// interface budget (max exported functions), reach agreement via
// Propose/Agree, refine their own specs accordingly, and the DC level runs a
// design-review script with an ECA rule that auto-propagates when a
// colleague requires the interface contract.
package main

import (
	"fmt"
	"log"

	"concord"
	"concord/internal/catalog"
	"concord/internal/version"
)

// registerTypes builds the software-engineering design object types:
// a system composed of modules, each with interface/size attributes.
func registerTypes(cat *catalog.Catalog) error {
	if err := cat.Register(&catalog.DOT{
		Name: "module",
		Attrs: []catalog.AttrDef{
			{Name: "name", Kind: catalog.KindString, Required: true},
			{Name: "exported", Kind: catalog.KindInt, Bounded: true, Min: 0, Max: 10000},
			{Name: "loc", Kind: catalog.KindFloat},
			{Name: "reviewed", Kind: catalog.KindBool},
		},
	}); err != nil {
		return err
	}
	return cat.Register(&catalog.DOT{
		Name:       "system",
		Attrs:      []catalog.AttrDef{{Name: "name", Kind: catalog.KindString, Required: true}},
		Components: []catalog.ComponentDef{{Name: "modules", DOT: "module"}},
	})
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := concord.NewSystem(concord.Options{RegisterTypes: registerTypes})
	if err != nil {
		return err
	}
	defer sys.Close()
	cm := sys.CM()
	ws, err := sys.AddWorkstation("dev-machine")
	if err != nil {
		return err
	}

	// Top-level DA: the whole system.
	if err := cm.InitDesign(concord.DAConfig{
		ID: "sys-da", DOT: "system", Designer: "architect",
	}); err != nil {
		return err
	}
	if err := cm.Start("sys-da"); err != nil {
		return err
	}
	// Two module DAs: parser and evaluator, sharing an interface budget.
	mkSpec := func(maxExported float64) *concord.Spec {
		return concord.MustSpec(
			concord.RangeFeature("iface-budget", "exported", 0, maxExported),
			concord.RangeFeature("reviewed", "loc", 0, 5000),
		)
	}
	for _, m := range []string{"parser-da", "eval-da"} {
		if err := cm.CreateSubDA("sys-da", concord.DAConfig{
			ID: m, DOT: "module", Spec: mkSpec(20), Designer: m,
		}); err != nil {
			return err
		}
		if err := cm.Start(m); err != nil {
			return err
		}
	}

	// Negotiation: the parser wants a bigger interface; the evaluator
	// agrees, and both refine their own specifications.
	if err := cm.Propose("parser-da", "eval-da", map[string]string{"iface-shift": "+5"}); err != nil {
		return err
	}
	fmt.Println("parser-da: proposed +5 exported functions (both DAs now negotiating)")
	if err := cm.Agree("eval-da", "parser-da"); err != nil {
		return err
	}
	fmt.Println("eval-da: agreed; both DAs active again")
	// Agreed outcome: parser 25, evaluator 15 — each a refinement w.r.t.
	// the super-DA's intent is managed by the designers themselves.
	if err := cm.RefineOwnSpec("eval-da", concord.MustSpec(
		concord.RangeFeature("iface-budget", "exported", 0, 15),
		concord.RangeFeature("reviewed", "loc", 0, 5000),
	)); err != nil {
		return err
	}
	if err := cm.ModifySubDASpec("sys-da", "parser-da", mkSpec(25)); err != nil {
		return err
	}
	fmt.Println("specs settled: parser ≤ 25 exported, evaluator ≤ 15")

	// Design iterations on the parser module: draft → evaluate → final.
	var lastDOV version.ID
	design := func(exported int64, loc float64) (version.ID, error) {
		dop, err := ws.Begin("", "parser-da")
		if err != nil {
			return "", err
		}
		obj := catalog.NewObject("module").
			Set("name", catalog.Str("parser")).
			Set("exported", catalog.Int(exported)).
			Set("loc", catalog.Float(loc))
		if err := dop.SetWorkspace(obj); err != nil {
			return "", err
		}
		root := lastDOV == ""
		if !root {
			if _, err := dop.Checkout(lastDOV, false); err != nil {
				return "", err
			}
		}
		id, err := dop.Checkin(version.StatusWorking, root)
		if err != nil {
			return "", err
		}
		return id, dop.Commit()
	}
	draft, err := design(30, 1200) // violates the 25 budget
	if err != nil {
		return err
	}
	q, err := cm.Evaluate("parser-da", draft)
	if err != nil {
		return err
	}
	fmt.Printf("draft %s: final=%t (missing %v)\n", draft, q.Final(), q.Missing)
	lastDOV = draft
	final, err := design(22, 1300) // within budget
	if err != nil {
		return err
	}
	q, err = cm.Evaluate("parser-da", final)
	if err != nil {
		return err
	}
	fmt.Printf("final %s: final=%t\n", final, q.Final())
	if _, err := cm.Propagate("parser-da", final); err != nil {
		return err
	}
	// The evaluator consumes the parser's interface contract.
	got, ok, err := cm.Require("eval-da", "parser-da", []string{"iface-budget"})
	if err != nil {
		return err
	}
	fmt.Printf("eval-da: Require parser interface → granted=%t (%s)\n", ok, got)
	return nil
}
