// Recovery: the joint failure handling of Fig. 8, demonstrated live.
//
// A long-lived DOP makes progress with automatic recovery points; the
// workstation crashes and restarts, recovering the DOP context. Then the
// server crashes mid-design-process and recovers its repository, DA
// hierarchy and scope locks from the redo log, after which work continues
// seamlessly.
package main

import (
	"fmt"
	"log"
	"os"

	"concord"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/vlsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "concord-recovery-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sys, err := concord.NewSystem(concord.Options{Dir: dir, RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		return err
	}
	defer sys.Close()
	cm := sys.CM()
	if err := cm.InitDesign(concord.DAConfig{
		ID: "da:rec", DOT: vlsi.DOTFloorplan,
		Spec:     concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, 100)),
		Designer: "alice",
	}); err != nil {
		return err
	}
	if err := cm.Start("da:rec"); err != nil {
		return err
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return err
	}

	// --- Workstation crash mid-DOP. ------------------------------------
	dop, err := ws.Begin("long-running-dop", "da:rec")
	if err != nil {
		return err
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(95))
	if err := dop.SetWorkspace(obj); err != nil {
		return err
	}
	if err := dop.Save("after-sizing"); err != nil { // recovery point
		return err
	}
	fmt.Println("ws1: DOP in progress, savepoint 'after-sizing' taken")
	if err := sys.CrashWorkstation("ws1"); err != nil {
		return err
	}
	fmt.Println("ws1: CRASHED (volatile DOP context lost)")

	ws, err = sys.AddWorkstation("ws1")
	if err != nil {
		return err
	}
	rec := ws.RecoveredDOPs()
	fmt.Printf("ws1: restarted, recovered %d DOP context(s)\n", len(rec))
	rdop := rec[0]
	fmt.Printf("ws1: DOP %s workspace area = %.0f (state at last recovery point)\n",
		rdop.ID(), catalog.NumAttr(rdop.Workspace(), "area"))
	dovID, err := rdop.Checkin(version.StatusWorking, true)
	if err != nil {
		return err
	}
	if err := rdop.Commit(); err != nil {
		return err
	}
	q, err := cm.Evaluate("da:rec", dovID)
	if err != nil {
		return err
	}
	fmt.Printf("ws1: recovered DOP checked in %s (final=%t)\n", dovID, q.Final())

	// --- Server crash mid-process. -------------------------------------
	// A checkpoint first: the repository state is snapshotted and the redo
	// log compacted behind it, so the restart below loads the snapshot and
	// replays only the suffix (bounded-time restart, DESIGN.md §3.5).
	if err := sys.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("server: checkpoint installed (log low-water mark at LSN %d)\n", sys.Repo().LowWater())
	before := sys.Repo().DOVCount()
	if err := sys.CrashServer(); err != nil {
		return err
	}
	fmt.Println("server: CRASHED (lock tables, scope table, staged checkins lost)")
	if err := sys.RestartServer(); err != nil {
		return err
	}
	fmt.Printf("server: restarted; repository recovered %d DOV(s) from snapshot + log suffix\n", sys.Repo().DOVCount())
	if sys.Repo().DOVCount() != before {
		return fmt.Errorf("lost committed versions")
	}
	da, err := sys.CM().Get("da:rec")
	if err != nil {
		return err
	}
	fmt.Printf("server: CM recovered DA %s in state %s\n", da.ID, da.State)

	// Work continues against the recovered server.
	dop2, err := ws.Begin("", "da:rec")
	if err != nil {
		return err
	}
	input, err := dop2.Checkout(dovID, true)
	if err != nil {
		return err
	}
	input.Set("area", catalog.Float(80))
	if err := dop2.SetWorkspace(input); err != nil {
		return err
	}
	next, err := dop2.Checkin(version.StatusWorking, false)
	if err != nil {
		return err
	}
	if err := dop2.Commit(); err != nil {
		return err
	}
	fmt.Printf("ws1: post-recovery derivation %s committed — design continues\n", next)
	return nil
}
