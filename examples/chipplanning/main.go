// Chip planning: the full Fig. 3 + Fig. 5 scenario.
//
// DA1 plans cell O with subcells A..D using the real chip-planner toolbox
// (bipartitioning, Stockmeyer sizing, dimensioning, global routing),
// delegates the subcells to DA2..DA5, exchanges a preliminary floorplan
// along a usage relationship, negotiates area between DA2 and DA3 after an
// impossible-spec message, and finally terminates the hierarchy with
// scope-lock inheritance of the final versions.
package main

import (
	"fmt"
	"log"

	"concord"
	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/vlsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := concord.NewSystem(concord.Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		return err
	}
	defer sys.Close()
	cm := sys.CM()
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		return err
	}

	// --- DA1 plans the cell under design O (Fig. 5 left). -------------
	if err := cm.InitDesign(concord.DAConfig{
		ID: "DA1", DOT: vlsi.DOTChip,
		Spec:     concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, 250)),
		Designer: "alice",
	}); err != nil {
		return err
	}
	if err := cm.Start("DA1"); err != nil {
		return err
	}
	nl := &vlsi.Netlist{Name: "O", Instances: []vlsi.Instance{
		{Name: "A", Kind: "cell", Area: 60}, {Name: "B", Kind: "cell", Area: 40},
		{Name: "C", Kind: "cell", Area: 30}, {Name: "D", Kind: "cell", Area: 20},
	}, Nets: []vlsi.Net{
		{Name: "n1", Pins: []string{"A", "B"}}, {Name: "n2", Pins: []string{"B", "C"}},
		{Name: "n3", Pins: []string{"C", "D"}}, {Name: "n4", Pins: []string{"A", "D"}},
	}}
	fp, err := vlsi.PlanChip(nl, vlsi.Interface{Cell: "O", Pins: 12}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("DA1: floorplan of O: %.1fx%.1f, %d cut nets, wire %.1f\n",
		fp.Outline.W, fp.Outline.H, fp.CutNets, fp.WireLength)
	dop, err := ws.Begin("", "DA1")
	if err != nil {
		return err
	}
	if err := dop.SetWorkspace(vlsi.FloorplanToObject(fp)); err != nil {
		return err
	}
	fpID, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		return err
	}
	if err := dop.Commit(); err != nil {
		return err
	}

	// --- Delegation: one sub-DA per subcell (Fig. 5 right). -----------
	budget := map[string]float64{}
	for _, p := range fp.Placements {
		budget[p.Name] = p.Rect.Area()
	}
	for i, cellName := range []string{"A", "B", "C", "D"} {
		da := fmt.Sprintf("DA%d", i+2)
		if err := cm.CreateSubDA("DA1", concord.DAConfig{
			ID: da, DOT: vlsi.DOTCell,
			Spec:     concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, budget[cellName])),
			Designer: da, DOV0: fpID,
		}); err != nil {
			return err
		}
		if err := cm.Start(da); err != nil {
			return err
		}
		fmt.Printf("%s: delegated cell %s with area budget %.1f (sees DOV0 %s)\n",
			da, cellName, budget[cellName], fpID)
	}

	// --- DA2 cannot fit cell A: impossible spec → area negotiation. ---
	needA := budget["A"] * 1.2
	if err := cm.SubDAImpossibleSpec("DA2", "cell A needs more area"); err != nil {
		return err
	}
	fmt.Printf("DA2: Sub_DA_Impossible_Spec (needs %.1f > %.1f)\n", needA, budget["A"])
	delta := needA - budget["A"]
	if err := cm.ModifySubDASpec("DA1", "DA2",
		concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, budget["A"]+delta))); err != nil {
		return err
	}
	if err := cm.ModifySubDASpec("DA1", "DA3",
		concord.MustSpec(concord.RangeFeature("area-limit", "area", 0, budget["B"]-delta))); err != nil {
		return err
	}
	fmt.Printf("DA1: shifted %.1f area from B (DA3) to A (DA2)\n", delta)

	// --- Each sub-DA derives its cell and pre-releases it. ------------
	for i, cellName := range []string{"A", "B", "C", "D"} {
		da := fmt.Sprintf("DA%d", i+2)
		view, err := cm.Get(da)
		if err != nil {
			return err
		}
		limit, _ := view.Spec.Feature("area-limit")
		cellDOP, err := ws.Begin("", da)
		if err != nil {
			return err
		}
		obj := catalog.NewObject(vlsi.DOTCell).
			Set("name", catalog.Str(cellName)).
			Set("area", catalog.Float(limit.Max*0.9))
		if err := cellDOP.SetWorkspace(obj); err != nil {
			return err
		}
		id, err := cellDOP.Checkin(version.StatusWorking, true)
		if err != nil {
			return err
		}
		if err := cellDOP.Commit(); err != nil {
			return err
		}
		q, err := cm.Evaluate(da, id)
		if err != nil {
			return err
		}
		if _, err := cm.Propagate(da, id); err != nil {
			return err
		}
		fmt.Printf("%s: derived %s (final=%t), propagated\n", da, id, q.Final())
	}

	// --- Usage: DA5 requires DA4's result to align cell D with C. -----
	got, ok, err := cm.Require("DA5", "DA4", []string{"area-limit"})
	if err != nil {
		return err
	}
	fmt.Printf("DA5: Require from DA4 → granted=%t, DOV=%s\n", ok, got)

	// --- Termination with scope-lock inheritance. ----------------------
	for i := range []string{"A", "B", "C", "D"} {
		da := fmt.Sprintf("DA%d", i+2)
		if err := cm.SubDAReadyToCommit(da); err != nil {
			return err
		}
		if err := cm.TerminateSubDA("DA1", da); err != nil {
			return err
		}
	}
	da1, err := cm.Get("DA1")
	if err != nil {
		return err
	}
	fmt.Printf("DA1: inherited %d final DOVs from terminated sub-DAs\n", len(da1.InheritedFinals))
	fmt.Printf("protocol log: %d cooperation operations\n", cm.ProtocolLogLen())
	return nil
}
