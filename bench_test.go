package concord

// One benchmark per experiment of DESIGN.md §6: E1-E8 regenerate the paper's
// figures, E9-E11 quantify its qualitative claims. Each bench times a full
// experiment run (the reproduction artifact), plus micro-benchmarks for the
// hot substrate paths beneath them.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/baseline"
	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/experiments"
	"concord/internal/lock"
	"concord/internal/rpc"
	"concord/internal/sim"
	"concord/internal/version"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

func benchReport(b *testing.B, run func() (experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatalf("%s: %v", rep.ID, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", rep.ID)
		}
	}
}

func BenchmarkFig1LevelStack(b *testing.B)  { benchReport(b, experiments.E1LevelStack) }
func BenchmarkFig2DesignPlane(b *testing.B) { benchReport(b, experiments.E2DesignPlane) }
func BenchmarkFig3ChipPlanning(b *testing.B) {
	benchReport(b, experiments.E3ChipPlanning)
}
func BenchmarkFig4DAHierarchy(b *testing.B) { benchReport(b, experiments.E4DAHierarchy) }
func BenchmarkFig5Delegation(b *testing.B)  { benchReport(b, experiments.E5Delegation) }
func BenchmarkFig6Scripts(b *testing.B)     { benchReport(b, experiments.E6Scripts) }
func BenchmarkFig7StateGraph(b *testing.B)  { benchReport(b, experiments.E7StateGraph) }
func BenchmarkFig8FailureMatrix(b *testing.B) {
	benchReport(b, experiments.E8FailureMatrix)
}
func BenchmarkE9CooperationVsIsolation(b *testing.B) {
	benchReport(b, experiments.E9Cooperation)
}
func BenchmarkE10CommitProtocols(b *testing.B) {
	benchReport(b, experiments.E10CommitProtocols)
}
func BenchmarkE11RecoveryPoints(b *testing.B) {
	benchReport(b, experiments.E11RecoveryPoints)
}

// --- E9 parameter sweep as sub-benchmarks (makespan reported as metric). ---

func BenchmarkE9Sweep(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		w := sim.Workload{Designers: n, Steps: 6, DepEvery: 2, BaseDuration: 10, Jitter: 2, Seed: 42}
		b.Run(fmt.Sprintf("concord/N=%d", n), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
				if err != nil {
					b.Fatal(err)
				}
				m, err := sim.RunCooperative(sys, w)
				sys.Close()
				if err != nil {
					b.Fatal(err)
				}
				makespan = m.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
		b.Run(fmt.Sprintf("flatacid/N=%d", n), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
				if err != nil {
					b.Fatal(err)
				}
				m, err := baseline.RunFlatACID(sys.Repo(), w)
				sys.Close()
				if err != nil {
					b.Fatal(err)
				}
				makespan = m.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// --- Concurrency benchmarks (DESIGN.md §6, E12). ---------------------------
//
// These pairs quantify the server-core concurrency work: group-commit WAL vs
// one fsync per append, sharded vs single-shard lock table, and the
// end-to-end multi-workstation scenario.

// BenchmarkWALAppendConcurrent drives parallel appenders through a forced
// (synced) log, comparing group commit against the serialized baseline.
// The group-commit variant amortizes each fsync over every concurrent
// appender; the serial variant pays one fsync per record.
func BenchmarkWALAppendConcurrent(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noGroup bool
	}{{"group-commit", false}, {"serialized", true}} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"),
				wal.Options{SyncOnAppend: true, NoGroupCommit: mode.noGroup})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 256)
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(1, "bench", payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			appends, batches, _ := l.Stats()
			if batches > 0 {
				b.ReportMetric(float64(appends)/float64(batches), "appends/fsync")
			}
		})
	}
}

// BenchmarkLockManagerConcurrent compares the sharded lock table against a
// single-shard (seed-design) table under parallel acquire/release traffic on
// disjoint resources — the multi-workstation pattern where designers work on
// different DOVs.
func BenchmarkLockManagerConcurrent(b *testing.B) {
	for _, shards := range []int{1, lock.DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := lock.NewManagerWithShards(shards)
			var id atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				owner := fmt.Sprintf("dop-%d", id.Add(1))
				i := 0
				for pb.Next() {
					res := fmt.Sprintf("dov/%s/%d", owner, i%32)
					if err := m.Acquire(owner, res, lock.X, time.Second); err != nil {
						b.Error(err)
						return
					}
					if err := m.Release(owner, res); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkE12MultiWorkstation runs the E12 load scenario at 8 workstations
// for both server cores, reporting aggregate checkin throughput.
func BenchmarkE12MultiWorkstation(b *testing.B) {
	for _, mode := range []struct {
		name       string
		serialized bool
	}{{"serialized", true}, {"concurrent", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunMultiWorkstation(mode.serialized, 8, 10)
				if err != nil {
					b.Fatal(err)
				}
				ops = res.OpsPerSec()
			}
			b.ReportMetric(ops, "checkins/s")
		})
	}
}

// BenchmarkE13Restart times restart (repo.Open) after an 8k-operation churn
// history, with and without the checkpoint subsystem, reporting the on-disk
// log footprint alongside. The repo-level BenchmarkRestartAfterChurn in
// internal/repo drills into the same pair at a larger history.
func BenchmarkE13Restart(b *testing.B) {
	for _, mode := range []struct {
		name      string
		ckptEvery int
	}{{"full-replay", 0}, {"checkpointed", 4096}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRestart(8000, mode.ckptEvery)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Reopen.Microseconds()), "restart-us")
				b.ReportMetric(float64(res.DiskBytes)/1024, "disk-KiB")
			}
		})
	}
}

// BenchmarkE15ReadPath runs the E15 server-side checkout scaling scenario at
// 8 readers for both read-path designs, reporting aggregate checkout
// throughput and the per-checkout allocation footprint.
func BenchmarkE15ReadPath(b *testing.B) {
	for _, mode := range []struct {
		name       string
		serialized bool
	}{{"locked-clone", true}, {"mvcc", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var res experiments.ReadScalingResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.RunCheckoutScaling(mode.serialized, 8, 500, experiments.ModeServer)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OpsPerSec(), "checkouts/s")
			b.ReportMetric(res.AllocsPerOp, "allocs/checkout")
		})
	}
}

// --- Substrate micro-benchmarks. -------------------------------------------

// BenchmarkE14CacheDelta times the full E14 cycle (checkin, cold checkout,
// cached re-checkout, delta checkin, delta checkout) over a ~128 KiB object
// and reports the wire-byte metrics alongside.
func BenchmarkE14CacheDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCacheDelta(256, 2, 480)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NotModifiedBytes), "NM-bytes")
		b.ReportMetric(float64(res.CheckinDeltaBytes), "ckinΔ-bytes")
		b.ReportMetric(float64(res.CachedLatency.Microseconds()), "cached-checkout-us")
		b.ReportMetric(float64(res.ColdLatency.Microseconds()), "cold-checkout-us")
	}
}

func BenchmarkDOPRoundTrip(b *testing.B) {
	sys, err := core.NewSystem(core.Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.CM().InitDesign(coop.Config{ID: "da1", DOT: vlsi.DOTFloorplan, Designer: "a"}); err != nil {
		b.Fatal(err)
	}
	if err := sys.CM().Start("da1"); err != nil {
		b.Fatal(err)
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dop, err := ws.Begin("", "da1")
		if err != nil {
			b.Fatal(err)
		}
		obj := catalog.NewObject(vlsi.DOTFloorplan).
			Set("cell", catalog.Str("O")).
			Set("area", catalog.Float(50))
		if err := dop.SetWorkspace(obj); err != nil {
			b.Fatal(err)
		}
		if _, err := dop.Checkin(version.StatusWorking, true); err != nil {
			b.Fatal(err)
		}
		if err := dop.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChipPlannerToolbox(b *testing.B) {
	cell := vlsi.GenerateHierarchy(7, "chip", 8, 1)
	shapes := vlsi.ShapesForChildren(cell, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vlsi.PlanChip(cell.Netlist, vlsi.Interface{Cell: "chip"}, shapes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoPhaseCommit(b *testing.B) {
	tr := rpc.NewInProc(rpc.FaultPlan{})
	defer tr.Close()
	res := &benchResource{}
	part, err := rpc.NewParticipant(res, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Serve("p", rpc.Dedup(part.Handler())); err != nil {
		b.Fatal(err)
	}
	client := rpc.NewClient(tr, "coord")
	client.Backoff = 0
	coord, err := rpc.NewCoordinator(client, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := coord.Commit(fmt.Sprintf("tx-%d", i), []string{"p"})
		if err != nil || out != rpc.OutcomeCommitted {
			b.Fatalf("outcome %s, %v", out, err)
		}
	}
}

type benchResource struct{}

func (benchResource) Prepare(string) (rpc.Vote, error) { return rpc.VoteCommit, nil }
func (benchResource) Commit(string) error              { return nil }
func (benchResource) Abort(string) error               { return nil }

func BenchmarkCooperationOps(b *testing.B) {
	sys, err := core.NewSystem(core.Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	cm := sys.CM()
	if err := cm.InitDesign(coop.Config{ID: "root", DOT: vlsi.DOTChip, Designer: "a"}); err != nil {
		b.Fatal(err)
	}
	if err := cm.Start("root"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("sub-%d", i)
		if err := cm.CreateSubDA("root", coop.Config{ID: id, DOT: vlsi.DOTCell, Designer: "b"}); err != nil {
			b.Fatal(err)
		}
		if err := cm.Start(id); err != nil {
			b.Fatal(err)
		}
		if err := cm.TerminateSubDA("root", id); err != nil {
			b.Fatal(err)
		}
	}
}
