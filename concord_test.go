package concord

import (
	"testing"

	"concord/internal/catalog"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// TestFacadeQuickstart exercises the public API end to end: the same flow as
// examples/quickstart, asserted.
func TestFacadeQuickstart(t *testing.T) {
	sys, err := NewSystem(Options{RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	spec := MustSpec(RangeFeature("area-limit", "area", 0, 100))
	if err := sys.CM().InitDesign(DAConfig{
		ID: "da1", DOT: vlsi.DOTFloorplan, Spec: spec, Designer: "alice",
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CM().Start("da1"); err != nil {
		t.Fatal(err)
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	dop, err := ws.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("demo")).
		Set("area", catalog.Float(85))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	id, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	q, err := sys.CM().Evaluate("da1", id)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatalf("quality = %+v, want final", q)
	}
	da, err := sys.CM().Get("da1")
	if err != nil {
		t.Fatal(err)
	}
	if da.Designer != "alice" || da.Spec.Len() != 1 {
		t.Fatalf("DA view = %+v", da)
	}
}

// TestFacadeSpecHelpers checks the re-exported specification constructors.
func TestFacadeSpecHelpers(t *testing.T) {
	if _, err := NewSpec(RangeFeature("a", "x", 0, 1), PredicateFeature("p", "tool")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpec(RangeFeature("dup", "x", 0, 1), RangeFeature("dup", "y", 0, 1)); err == nil {
		t.Fatal("duplicate feature accepted")
	}
	s := MustSpec(RangeFeature("only", "x", 0, 2))
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestFacadeScriptAliases ensures the script node aliases compose.
func TestFacadeScriptAliases(t *testing.T) {
	var n ScriptNode = ScriptSeq{Steps: []ScriptNode{
		ScriptOp{Name: "a", IsDOP: true},
		ScriptAlt{Name: "m", Branches: []ScriptNode{ScriptOp{Name: "b"}}},
		ScriptLoop{Name: "l", Body: ScriptOp{Name: "c"}, Max: 2},
		ScriptPar{Branches: []ScriptNode{ScriptOpen{Name: "o"}}},
	}}
	ops := n.Ops()
	if len(ops) != 3 {
		t.Fatalf("Ops = %v", ops)
	}
}
