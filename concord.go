// Package concord is the public facade of this CONCORD reproduction —
// Ritter, Mitschang, Härder, Gesmann, Schöning: "Capturing Design Dynamics:
// The CONCORD Approach", ICDE 1994.
//
// CONCORD (Controlling CoopeRation in Design Environments) organizes
// cooperative design processes on three levels:
//
//   - the Administration/Cooperation level: design activities (DAs) with
//     goals expressed as feature specifications, grown into hierarchies by
//     delegation and coupled by negotiation and usage relationships, all
//     mediated by a central cooperation manager;
//   - the Design Control level: per-DA work flow over design operations,
//     specified by scripts, domain constraints and ECA rules, executed
//     recoverably by a design manager;
//   - the Tool Execution level: design operations as long-lived ACID
//     transactions with checkout/checkin, savepoints, suspend/resume and
//     automatic recovery points, driven by a split client/server
//     transaction manager over transactional RPC and two-phase commit.
//
// The typical entry point is NewSystem followed by AddWorkstation:
//
//	sys, err := concord.NewSystem(concord.Options{RegisterTypes: vlsi.RegisterCatalog})
//	ws, err := sys.AddWorkstation("ws1")
//	err = sys.CM().InitDesign(concord.DAConfig{ID: "chip-da", DOT: "chip", ...})
//
// See examples/ for complete programs and DESIGN.md for the system map.
package concord

import (
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/txn"
	"concord/internal/version"
)

// VersionID identifies a design object version repository-wide.
type VersionID = version.ID

// DOV is a design object version.
type DOV = version.DOV

// Version lifecycle statuses (for DOP.Checkin).
const (
	// StatusWorking marks a preliminary version private to its DA.
	StatusWorking = version.StatusWorking
	// StatusPropagated marks a pre-released version.
	StatusPropagated = version.StatusPropagated
	// StatusFinal marks a version fulfilling the whole specification.
	StatusFinal = version.StatusFinal
)

// System is a complete CONCORD deployment (server site + workstations).
type System = core.System

// Options configures a System.
type Options = core.Options

// Workstation is one designer's machine (client-TM + design managers).
type Workstation = core.Workstation

// DA is the public view of a design activity.
type DA = coop.DA

// DAConfig is the description vector of a DA to be created.
type DAConfig = coop.Config

// DAState is a state of the Fig. 7 lifecycle.
type DAState = coop.State

// DOP is a design operation: a long-lived ACID transaction.
type DOP = txn.DOP

// Spec is a design specification (the SPEC of the description vector).
type Spec = feature.Spec

// Feature is one named property of a specification.
type Feature = feature.Feature

// Script nodes for DC-level work-flow templates.
type (
	// ScriptNode is any work-flow fragment.
	ScriptNode = script.Node
	// ScriptOp invokes one operation.
	ScriptOp = script.Op
	// ScriptSeq runs steps in order.
	ScriptSeq = script.Seq
	// ScriptAlt branches between alternatives.
	ScriptAlt = script.Alt
	// ScriptLoop iterates its body.
	ScriptLoop = script.Loop
	// ScriptOpen is a partially undetermined region.
	ScriptOpen = script.Open
	// ScriptPar runs branches concurrently.
	ScriptPar = script.Par
	// DMConfig assembles a design manager.
	DMConfig = script.Config
	// Rule is an (event, condition, action) triple.
	Rule = script.Rule
	// Event is an asynchronous cooperation event.
	Event = script.Event
)

// NewSystem boots a CONCORD system (see core.NewSystem).
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// NewSpec builds a design specification from features.
func NewSpec(features ...Feature) (*Spec, error) { return feature.NewSpec(features...) }

// MustSpec is NewSpec panicking on error, for statically known specs.
func MustSpec(features ...Feature) *Spec { return feature.MustSpec(features...) }

// RangeFeature constrains a numeric attribute to [min, max].
func RangeFeature(name, attr string, min, max float64) Feature {
	return feature.Range(name, attr, min, max)
}

// PredicateFeature requires a registered test tool to accept the object.
func PredicateFeature(name, tool string) Feature { return feature.Predicate(name, tool) }
