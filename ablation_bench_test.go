package concord

// Ablation benchmarks for the design choices DESIGN.md calls out: forced log
// writes (WAL sync), recovery-point frequency, RPC deduplication, and the
// derivation-lock fast path. Each pair isolates the cost of one mechanism
// the paper's failure model requires.

import (
	"fmt"
	"path/filepath"
	"testing"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

// BenchmarkAblationWALSync compares forced vs. buffered log appends — the
// price of the durability guarantee behind every checkin.
func BenchmarkAblationWALSync(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "buffered"
		if sync {
			name = "forced"
		}
		b.Run(name, func(b *testing.B) {
			l, err := wal.Open(filepath.Join(b.TempDir(), "a.wal"), wal.Options{SyncOnAppend: sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(1, "bench", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRecoveryPoints compares DOP work loops with different
// recovery-point frequencies (every unit vs. never) — the cost side of E11.
func BenchmarkAblationRecoveryPoints(b *testing.B) {
	for _, every := range []int{1, 5, 0} {
		name := fmt.Sprintf("every=%d", every)
		if every == 0 {
			name = "never"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := core.NewSystem(core.Options{Dir: b.TempDir(), RegisterTypes: vlsi.RegisterCatalog})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := sys.CM().InitDesign(coop.Config{ID: "da1", DOT: vlsi.DOTFloorplan, Designer: "a"}); err != nil {
				b.Fatal(err)
			}
			if err := sys.CM().Start("da1"); err != nil {
				b.Fatal(err)
			}
			ws, err := sys.AddWorkstation("ws1")
			if err != nil {
				b.Fatal(err)
			}
			dop, err := ws.Begin("", "da1")
			if err != nil {
				b.Fatal(err)
			}
			obj := catalog.NewObject(vlsi.DOTFloorplan).Set("cell", catalog.Str("O")).Set("area", catalog.Float(1))
			if err := dop.SetWorkspace(obj); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dop.Workspace().Set("step", catalog.Int(int64(i)))
				if every > 0 && i%every == 0 {
					if err := dop.Save(fmt.Sprintf("rp-%d", i)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationDedup compares raw transport calls against the
// exactly-once path (envelope + dedup cache) — the price of transactional
// RPC on a loss-free network.
func BenchmarkAblationDedup(b *testing.B) {
	handler := func(m string, p []byte) ([]byte, error) { return p, nil }
	b.Run("raw", func(b *testing.B) {
		tr := rpc.NewInProc(rpc.FaultPlan{})
		defer tr.Close()
		if err := tr.Serve("s", handler); err != nil {
			b.Fatal(err)
		}
		payload := []byte("x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Call("s", "m", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exactly-once", func(b *testing.B) {
		tr := rpc.NewInProc(rpc.FaultPlan{})
		defer tr.Close()
		if err := tr.Serve("s", rpc.Dedup(handler)); err != nil {
			b.Fatal(err)
		}
		client := rpc.NewClient(tr, "c")
		client.Backoff = 0
		payload := []byte("x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Call("s", "m", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRepoDurability compares volatile and durable checkins —
// what the redo log costs per stored version.
func BenchmarkAblationRepoDurability(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "volatile"
		if durable {
			name = "durable"
		}
		b.Run(name, func(b *testing.B) {
			cat := vlsi.NewCatalog()
			var opts repo.Options
			if durable {
				opts = repo.Options{Dir: b.TempDir(), Sync: true}
			}
			r, err := repo.Open(cat, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			if err := r.CreateGraph("da"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := catalog.NewObject(vlsi.DOTFloorplan).
					Set("cell", catalog.Str("O")).
					Set("area", catalog.Float(float64(i)))
				v := &version.DOV{
					ID: version.ID(fmt.Sprintf("v%08d", i)), DOT: vlsi.DOTFloorplan,
					DA: "da", Object: obj, Status: version.StatusWorking,
				}
				if err := r.Checkin(v, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
